"""Compiled native backend for the kernel plans' loop nests.

The paper's synthesis system emitted compiled Fortran for its fused,
tiled loop nests; the GEMM kernel plans (:mod:`repro.kernels.plan`)
stop at numpy calls.  This module closes that gap: each flat term of a
formula sequence lowers to a :class:`NativeSpec` -- a shape-specialized
loop-nest value object -- and a :class:`NativeEngine` turns specs into
machine code:

* **numba backend** -- when numba is importable, the nest's Python
  rendering (:func:`repro.codegen.cgen.py_source`) is ``njit``-ed;
* **cc backend** -- otherwise the C rendering
  (:func:`repro.codegen.cgen.c_source`) is compiled by the system C
  compiler (``cc``/``gcc``/``clang``, discovered once) into a shared
  object loaded through :mod:`ctypes`.

Nests are **thread-parallel**: ``function(spec, dtype, threads=N)``
compiles a variant that distributes the outermost output loop over
``N`` threads.  The strategy is probed, never assumed:

* the cc backend probes the compiler for working ``-fopenmp`` once
  (cached per compiler path; ``REPRO_NO_OPENMP=1`` disables it) and
  emits ``#pragma omp parallel for`` nests plus ``#pragma omp simd``
  on the innermost output loop;
* without OpenMP (and always under numba), the engine falls back to a
  portable *chunked* strategy: the kernel gains ``(lo, hi)`` bounds on
  the outermost output loop and a thread pool drives disjoint slices
  (ctypes calls release the GIL; numba kernels are ``nogil``).

Both strategies keep every output element on exactly one thread with
an unchanged inner accumulation order, so parallel nests are
bit-identical to the sequential ones.  Thread count and strategy are
part of the artifact flags, so every ``(nest, dtype, threads)``
variant has its own content-addressed key and memoized function.

Whole *fused statement groups* (:class:`FusedSpec`, built by the
cross-statement fusion pass in :mod:`repro.kernels.plan`) compile the
same way: one kernel walks the shared output loops once and evaluates
every member statement per point, entering the parallel region once
per group instead of once per statement.

Compiled objects are cached in a content-addressed
:class:`~repro.kernels.artifacts.ArtifactStore` keyed by sha256 of the
nest IR + dtype + backend + compiler identity + flags + package version
(:func:`repro.kernels.artifacts.artifact_key`), so a warm hit loads the
existing shared object with **zero** compiler invocations -- in-process
through the function cache, across processes through the store's disk
tier.  Concurrent requests for the *same* key coalesce onto one
compile (per-key in-flight events; lookup and publication under the
engine lock, compiler forks outside it), so an 8-thread stampede costs
one compiler invocation.

Unavailability is never an error: an environment with neither numba
nor a C compiler reports :meth:`NativeEngine.available` ``False`` and
every caller (pipeline, runner, autotuner) degrades to the GEMM/einsum
path with a structured note; a compiler without OpenMP degrades to the
chunked strategy with a structured note.  A nest whose individual
compilation fails is remembered as failed (no retry storms) and its
term falls back the same way.

Unlike the GEMM lowering, native nests are *total* over array terms:
diagonals (repeated indices within an operand) and 3+-operand products
compile fine -- only repeated output indices stay on the einsum path.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kernels.artifacts import ArtifactStore, artifact_key


def _cgen():
    # deferred: repro.codegen's package __init__ imports the interpreter,
    # which imports the executor, which imports this package -- importing
    # the emitter at call time keeps the module graph acyclic
    from repro.codegen import cgen

    return cgen

__all__ = [
    "NativeSpec",
    "FusedSpec",
    "NativeEngine",
    "lower_native_term",
    "default_engine",
    "configure_default_engine",
    "native_available",
    "native_backend",
    "compiler_fingerprint",
    "engine_stats",
]

#: optimization flags baked into every cc compile (and the artifact key)
CC_FLAGS: Tuple[str, ...] = ("-O3", "-fPIC", "-shared")

#: the OpenMP flag probed per compiler and appended when it works
OMP_FLAG = "-fopenmp"

#: summation-loop block size of the emitted nests
NATIVE_TILE = 64

#: dtypes the backends implement (C types exist for both)
_CTYPES = {"float64": "double", "float32": "float"}


@dataclass(frozen=True)
class NativeSpec:
    """One flat term as a shape-specialized loop nest (pickle-safe).

    Loop order is output indices (in target order) followed by summed
    indices (in order of first operand appearance).  ``extents`` are
    resolved at compile time, like every other lowering; ``operands``
    maps each operand axis to its loop position.  The output array is
    indexed by the first ``nout`` loop variables in order.
    """

    names: Tuple[str, ...]
    extents: Tuple[int, ...]
    nout: int
    operands: Tuple[Tuple[int, ...], ...]
    #: scalar algebra of the nest (see :mod:`repro.semiring`); part of
    #: the rendered IR, hence of the artifact key
    semiring: str = "plus_times"

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return self.extents[: self.nout]

    def ir(self) -> str:
        """The deterministic nest text that addresses artifacts."""
        return _cgen().render_nest_ir(self)


@dataclass(frozen=True)
class FusedSpec:
    """A fused statement group: member nests sharing one output space.

    Built by the cross-statement fusion pass
    (:func:`repro.kernels.plan.compile_kernel_plan` with ``fuse=True``)
    from consecutive statements whose outputs walk the same iteration
    space.  ``members`` are the flat-term nests in statement order;
    ``out_slots[m]`` is the output array (of ``nslots`` distinct
    results) member ``m`` accumulates into; ``aliased`` records that
    some member reads another member's output, which drops ``restrict``
    from the emitted kernel.
    """

    nout: int
    out_extents: Tuple[int, ...]
    members: Tuple[NativeSpec, ...]
    out_slots: Tuple[int, ...]
    nslots: int
    aliased: bool = False

    def ir(self) -> str:
        """The deterministic group text that addresses artifacts."""
        return _cgen().render_fused_ir(self)


#: anything the engine can compile
AnySpec = Union[NativeSpec, FusedSpec]


def lower_native_term(
    refs: Sequence, sum_indices, target: Sequence, bindings,
    semiring: str = "plus_times",
) -> Optional[NativeSpec]:
    """Build the :class:`NativeSpec` of one flat term, or ``None``.

    The only unsupported shape is a repeated index in the *output*
    (no valid dense iteration space); operand diagonals and any
    operand count lower fine.  ``semiring`` selects the scalar algebra
    the nest folds with (any registered algebra compiles -- native
    nests, unlike GEMM, are total over semirings).
    """
    target = tuple(target)
    if len(set(target)) != len(target):
        return None
    order: List = list(target)
    seen = set(target)
    for ref in refs:
        for i in ref.indices:
            if i not in seen:
                seen.add(i)
                order.append(i)
    pos = {i: p for p, i in enumerate(order)}
    operands = tuple(
        tuple(pos[i] for i in ref.indices) for ref in refs
    )
    try:
        extents = tuple(i.extent(bindings) for i in order)
    except (KeyError, TypeError, ValueError):
        return None
    return NativeSpec(
        names=tuple(i.name for i in order),
        extents=extents,
        nout=len(target),
        operands=operands,
        semiring=semiring,
    )


# -- compiler discovery ------------------------------------------------------


def _find_cc() -> Optional[str]:
    """Path of the system C compiler, or ``None``."""
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        path = shutil.which(name)
        if path:
            return path
    return None


_identity_cache: Dict[str, str] = {}


def _cc_identity(cc: str) -> str:
    """Stable identity of one compiler binary: version line + path."""
    cached = _identity_cache.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
        line = out.splitlines()[0].strip() if out else os.path.basename(cc)
    except (OSError, subprocess.SubprocessError):
        line = os.path.basename(cc)
    identity = f"{line} [{cc}]"
    _identity_cache[cc] = identity
    return identity


def _numba():
    """The numba module when importable (and not disabled), else None."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:
        import numba  # type: ignore

        return numba
    except Exception:
        return None


# -- OpenMP capability probing -----------------------------------------------

_OMP_PROBE_SRC = """\
#include <omp.h>
int probe(void)
{
  int n = 0;
#pragma omp parallel num_threads(2)
  {
#pragma omp atomic
    n += 1;
  }
  return n;
}
"""

_omp_cache: Dict[str, Tuple[bool, str]] = {}
_omp_lock = threading.Lock()


def _openmp_supported(cc: Optional[str]) -> Tuple[bool, str]:
    """Whether compiler ``cc`` builds a working ``-fopenmp`` object.

    ``(ok, reason)`` -- the reason explains a ``False`` so callers can
    surface a structured degradation note.  Probe results are cached
    per compiler path (the env kill-switch is consulted every call, so
    tests and operators can flip ``REPRO_NO_OPENMP`` at runtime).
    Probing never raises: a missing, broken, or OpenMP-less compiler
    is an answer, not an error.
    """
    if cc is None:
        return False, "no C compiler"
    if os.environ.get("REPRO_NO_OPENMP"):
        return False, "OpenMP disabled (REPRO_NO_OPENMP is set)"
    with _omp_lock:
        cached = _omp_cache.get(cc)
    if cached is not None:
        return cached
    result: Tuple[bool, str]
    try:
        with tempfile.TemporaryDirectory(prefix="repro-omp-probe-") as tmp:
            c_path = os.path.join(tmp, "probe.c")
            so_path = os.path.join(tmp, "probe.so")
            with open(c_path, "w", encoding="utf-8") as handle:
                handle.write(_OMP_PROBE_SRC)
            proc = subprocess.run(
                [cc, *CC_FLAGS, OMP_FLAG, "-o", so_path, c_path],
                capture_output=True,
                text=True,
                timeout=60,
                check=False,
            )
        if proc.returncode == 0:
            result = True, "OpenMP supported"
        else:
            detail = (proc.stderr or proc.stdout or "").strip()
            detail = detail.splitlines()[0][:160] if detail else "exit != 0"
            result = False, f"compiler has no working {OMP_FLAG} ({detail})"
    except (OSError, subprocess.SubprocessError) as exc:
        result = False, f"OpenMP probe failed ({type(exc).__name__}: {exc})"
    with _omp_lock:
        _omp_cache[cc] = result
    return result


def _chunk_bounds(extent: int, nthreads: int) -> List[Tuple[int, int]]:
    """Disjoint, exhaustive ``[lo, hi)`` slices of the outer loop."""
    n = max(1, min(nthreads, extent))
    base, rem = divmod(extent, n)
    bounds = []
    lo = 0
    for i in range(n):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# -- the engine --------------------------------------------------------------


class NativeEngine:
    """Compiles :class:`NativeSpec` nests and caches the results.

    ``backend`` forces ``"numba"`` or ``"cc"`` (default: numba when
    importable, else cc when a compiler exists, else unavailable);
    ``"none"`` forces an unavailable engine, which is how the tests --
    and the pipeline's degraded mode -- model a machine without any
    compiler;
    ``store`` is the content-addressed :class:`ArtifactStore` (a
    private in-memory store by default -- pass one with a ``directory``
    to share compiled objects across processes); ``tile`` is the
    summation blocking factor baked into emitted nests; ``threads`` is
    the default thread count of compiled nests (``function`` calls can
    override it per nest; the count is always capped by the outer
    output extent).

    Thread-safe: the serving layer drives one process-wide engine from
    concurrent executor threads.  Function memoization is per artifact
    key: lookup and publication happen under the engine lock, compiles
    run outside it, and concurrent requests for one key wait on a
    per-key event instead of forking the compiler twice.

    Counters: ``compile_invocations`` (compiler forks / JIT builds),
    ``store_loads`` (functions revived from stored bytes with no
    compile), ``failures`` (specs whose compile failed; remembered so
    they are not retried), ``parallel_functions`` / ``fused_functions``
    (loaded nests that are threaded / fused groups).
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        backend: Optional[str] = None,
        tile: int = NATIVE_TILE,
        threads: int = 1,
    ) -> None:
        if backend not in (None, "numba", "cc", "none"):
            raise ValueError(
                f"unknown native backend {backend!r} "
                "(use 'numba', 'cc', or 'none')"
            )
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.store = store if store is not None else ArtifactStore()
        self.tile = tile
        self.threads = threads
        self._lock = threading.Lock()
        self._functions: Dict[str, Callable] = {}
        self._failed: Dict[str, str] = {}
        self._inflight: Dict[str, threading.Event] = {}
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        self.compile_invocations = 0
        self.store_loads = 0
        self.parallel_functions = 0
        self.fused_functions = 0
        self._numba = _numba() if backend in (None, "numba") else None
        self._cc = _find_cc() if backend in (None, "cc") else None
        if backend == "numba" and self._numba is None:
            self.backend: Optional[str] = None
        elif backend == "cc" and self._cc is None:
            self.backend = None
        elif self._numba is not None and backend in (None, "numba"):
            self.backend = "numba"
        elif self._cc is not None:
            self.backend = "cc"
        else:
            self.backend = None

    # -- identity ---------------------------------------------------------

    def available(self) -> bool:
        """Whether this machine can compile nests at all."""
        return self.backend is not None

    def unavailable_reason(self) -> str:
        return (
            "no native backend: numba not importable and no C compiler "
            "(cc/gcc/clang) on PATH"
        )

    def compiler_identity(self) -> str:
        """What produces the machine code (part of every artifact key)."""
        if self.backend == "numba":
            return f"numba {self._numba.__version__}"
        if self.backend == "cc":
            return _cc_identity(self._cc)
        return "none"

    def openmp(self) -> bool:
        """Whether compiled nests can use OpenMP pragmas here."""
        if self.backend != "cc":
            return False
        ok, _ = _openmp_supported(self._cc)
        return ok

    def parallel_strategy(self, threads: Optional[int] = None) -> str:
        """How ``threads`` would be realized: ``omp``/``chunk``/``none``.

        ``none`` means sequential (one thread requested, or no backend);
        individual nests additionally fall back to ``none`` when their
        outer output extent cannot feed a second thread.
        """
        eff = self.threads if threads is None else threads
        if eff <= 1 or self.backend is None:
            return "none"
        if self.openmp():
            return "omp"
        return "chunk"

    def parallel_note(self, threads: Optional[int] = None) -> Optional[str]:
        """A structured degradation note when ``threads`` cannot use
        OpenMP (``None`` when nothing degraded)."""
        eff = self.threads if threads is None else threads
        if eff <= 1 or self.backend is None:
            return None
        if self.backend == "numba":
            return (
                f"kernel threads={eff}: numba backend has no OpenMP "
                "emission; using the chunked outer-loop fallback "
                "(njit nogil thread pool)"
            )
        ok, reason = _openmp_supported(self._cc)
        if ok:
            return None
        return (
            f"kernel threads={eff}: {reason}; using the chunked "
            "outer-loop fallback (ctypes thread pool)"
        )

    def flags(
        self, threads: Optional[int] = None, spec: Optional[AnySpec] = None
    ) -> Tuple[str, ...]:
        """The flag tuple entering artifact keys (optionally for one
        nest's effective thread count)."""
        eff, strategy, omp_ok = self._resolve(spec, threads)
        base = CC_FLAGS if self.backend == "cc" else ()
        if self.backend == "cc" and omp_ok:
            base = base + (OMP_FLAG,)
        return base + (f"tile={self.tile}", f"threads={eff}",
                       f"par={strategy}")

    def _resolve(
        self, spec: Optional[AnySpec], threads: Optional[int]
    ) -> Tuple[int, str, bool]:
        """``(effective threads, strategy, openmp available)`` for one
        nest.  Thread count is capped by the outer output extent (the
        distributed loop); a scalar output runs sequentially."""
        eff = self.threads if threads is None else threads
        if eff < 1:
            raise ValueError(f"threads must be >= 1, got {eff}")
        omp_ok = self.openmp()
        if spec is not None:
            if isinstance(spec, FusedSpec):
                outer = spec.out_extents[0] if spec.nout else 0
            else:
                outer = spec.extents[0] if spec.nout else 0
            eff = max(1, min(eff, outer)) if outer else 1
        if eff <= 1 or self.backend is None:
            return eff, "none", omp_ok
        return eff, ("omp" if omp_ok else "chunk"), omp_ok

    def key(
        self, spec: AnySpec, dtype, threads: Optional[int] = None
    ) -> str:
        """The content-addressed artifact key of ``(spec, dtype,
        threads)`` here."""
        return artifact_key(
            spec.ir(),
            np.dtype(dtype).str,
            self.backend or "none",
            self.compiler_identity(),
            self.flags(threads, spec),
        )

    # -- compilation ------------------------------------------------------

    def function(
        self, spec: AnySpec, dtype=np.float64, threads: Optional[int] = None
    ) -> Optional[Callable]:
        """A callable for the nest, or ``None``.

        For a :class:`NativeSpec` the callable is ``fn(coef, ops, out)``
        -- ``ops`` the sequence of C-contiguous operand arrays, ``out``
        the C-contiguous output buffer, all of ``dtype``; the call
        **accumulates** (the caller zeroes ``out`` first when it wants
        assignment).  For a :class:`FusedSpec` it is
        ``fn(coefs, ops, outs)`` with one coefficient per member, the
        members' operands concatenated, and one output per slot.

        ``threads`` overrides the engine default for this nest; the
        compiled variant is memoized per ``(nest, dtype, threads)``
        key.  Returns ``None`` when the engine is unavailable, the
        dtype unsupported, or compilation failed (failures are
        remembered, not retried).  Concurrent calls for one key
        coalesce onto a single compile.
        """
        if self.backend is None:
            return None
        dtype = np.dtype(dtype)
        if dtype.name not in _CTYPES:
            return None
        eff, strategy, _ = self._resolve(spec, threads)
        key = self.key(spec, dtype, threads)
        while True:
            with self._lock:
                fn = self._functions.get(key)
                if fn is not None:
                    return fn
                if key in self._failed:
                    return None
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            # someone else is compiling this key: wait, then re-read
            event.wait()
        try:
            if self.backend == "numba":
                fn = self._build_numba(spec, dtype, key, eff, strategy)
            else:
                fn = self._build_cc(spec, dtype, key, eff, strategy)
        except Exception as exc:  # compile errors degrade, never raise
            with self._lock:
                self._failed[key] = f"{type(exc).__name__}: {exc}"
                self._inflight.pop(key, None)
            event.set()
            return None
        with self._lock:
            self._functions[key] = fn
            if eff > 1:
                self.parallel_functions += 1
            if isinstance(spec, FusedSpec):
                self.fused_functions += 1
            self._inflight.pop(key, None)
        event.set()
        return fn

    def failure(
        self, spec: AnySpec, dtype=np.float64, threads: Optional[int] = None
    ) -> Optional[str]:
        """The recorded compile failure for ``(spec, dtype)``, if any."""
        key = self.key(spec, dtype, threads)
        with self._lock:
            return self._failed.get(key)

    # -- source emission (shared by both backends) ------------------------

    def _c_source(
        self, spec: AnySpec, dtype, eff: int, strategy: str
    ) -> str:
        cgen = _cgen()
        ctype = _CTYPES[np.dtype(dtype).name]
        simd = self.openmp()
        if isinstance(spec, FusedSpec):
            return cgen.c_fused_source(
                spec, ctype, self.tile,
                threads=eff, parallel=strategy, simd=simd,
            )
        return cgen.c_source(
            spec, ctype, self.tile,
            threads=eff, parallel=strategy, simd=simd,
        )

    def _py_source(self, spec: AnySpec, strategy: str) -> str:
        cgen = _cgen()
        chunked = strategy == "chunk"
        if isinstance(spec, FusedSpec):
            return cgen.py_fused_source(spec, tile=self.tile,
                                        chunked=chunked)
        return cgen.py_source(spec, tile=self.tile, chunked=chunked)

    # numba: the artifact is the in-process dispatcher; the store keeps
    # the rendered source so warm processes skip nothing but the text.
    def _build_numba(
        self, spec: AnySpec, dtype, key: str, eff: int, strategy: str
    ) -> Callable:
        source = self._py_source(spec, strategy)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<nest {key[:12]}>", "exec"), namespace)
        with self._lock:
            self.compile_invocations += 1
        chunked = strategy == "chunk"
        jitted = self._numba.njit(cache=False, nogil=chunked)(
            namespace["kern"]
        )
        fused = isinstance(spec, FusedSpec)
        nops = (
            sum(len(m.operands) for m in spec.members)
            if fused
            else len(spec.operands)
        )
        if fused:
            outer = spec.out_extents[0]

            def call(coefs, ops, outs) -> None:
                carr = np.ascontiguousarray(coefs, dtype=np.float64)
                flat = [ops[k].ravel() for k in range(nops)]
                flat_outs = [o.ravel() for o in outs]
                if chunked:
                    _run_chunks(
                        lambda lo, hi: jitted(carr, lo, hi, *flat,
                                              *flat_outs),
                        outer, eff,
                    )
                else:
                    jitted(carr, *flat, *flat_outs)

            return call
        outer = spec.extents[0] if spec.nout else 0

        def call(coef: float, ops, out) -> None:
            flat = [ops[k].ravel() for k in range(nops)]
            if chunked:
                _run_chunks(
                    lambda lo, hi: jitted(float(coef), lo, hi, *flat,
                                          out.ravel()),
                    outer, eff,
                )
            else:
                jitted(float(coef), *flat, out.ravel())

        return call

    def _build_cc(
        self, spec: AnySpec, dtype, key: str, eff: int, strategy: str
    ) -> Callable:
        path = self._load_path(key)  # counts store_loads on a warm hit
        if path is None:
            blob = self._compile_cc(spec, dtype, key, eff, strategy)
            path = self.store.disk_path(key)
            if path is None:
                path = self._spill(key, blob)
        lib = ctypes.CDLL(path)
        fn = lib.kern
        ptr = ctypes.POINTER(
            ctypes.c_double if dtype == np.float64 else ctypes.c_float
        )
        dptr = ctypes.POINTER(ctypes.c_double)
        chunked = strategy == "chunk"
        bounds = [ctypes.c_long, ctypes.c_long] if chunked else []
        fused = isinstance(spec, FusedSpec)
        if fused:
            nops = sum(len(m.operands) for m in spec.members)
            outer = spec.out_extents[0]
            fn.argtypes = [dptr] + bounds + [ptr] * (nops + spec.nslots)
            fn.restype = None

            def call(coefs, ops, outs) -> None:
                carr = np.ascontiguousarray(coefs, dtype=np.float64)
                args = [ops[k].ctypes.data_as(ptr) for k in range(nops)]
                args += [o.ctypes.data_as(ptr) for o in outs]
                cp = carr.ctypes.data_as(dptr)
                if chunked:
                    _run_chunks(
                        lambda lo, hi: fn(cp, lo, hi, *args), outer, eff
                    )
                else:
                    fn(cp, *args)

            call._lib = lib  # keep the shared object mapped while callable
            return call
        nops = len(spec.operands)
        outer = spec.extents[0] if spec.nout else 0
        fn.argtypes = [ctypes.c_double] + bounds + [ptr] * (nops + 1)
        fn.restype = None

        def call(coef: float, ops, out) -> None:
            args = [ops[k].ctypes.data_as(ptr) for k in range(nops)]
            args.append(out.ctypes.data_as(ptr))
            c = ctypes.c_double(coef)
            if chunked:
                _run_chunks(lambda lo, hi: fn(c, lo, hi, *args), outer, eff)
            else:
                fn(c, *args)

        call._lib = lib  # keep the shared object mapped while callable
        return call

    def _load_path(self, key: str) -> Optional[str]:
        """A loadable path for an already-stored artifact, else None."""
        path = self.store.disk_path(key)
        if path is not None:
            # count the store hit (promotes bytes into the memory tier)
            self.store.get(key)
            with self._lock:
                self.store_loads += 1
            return path
        found = self.store.get(key)
        if found is not None:
            blob, _tier = found
            with self._lock:
                self.store_loads += 1  # memory-tier revival, no compile
            return self._spill(key, blob)
        return None

    def _scratch_dir(self) -> str:
        """Engine scratch directory (created once, lock-protected)."""
        with self._lock:
            if self._scratch is None:
                self._scratch = tempfile.TemporaryDirectory(
                    prefix="repro-native-"
                )
            return self._scratch.name

    def _spill(self, key: str, blob: bytes) -> str:
        """Write artifact bytes to engine scratch so ctypes can load."""
        path = os.path.join(self._scratch_dir(), f"{key}.so")
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        return path

    def _compile_cc(
        self, spec: AnySpec, dtype, key: str, eff: int, strategy: str
    ) -> bytes:
        source = self._c_source(spec, dtype, eff, strategy)
        scratch = self._scratch_dir()
        c_path = os.path.join(scratch, f"{key}.c")
        so_path = os.path.join(scratch, f"{key}.so")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(source)
        flags = list(CC_FLAGS)
        if self.openmp():
            flags.append(OMP_FLAG)
        cmd = [self._cc, *flags, "-o", so_path, c_path]
        with self._lock:
            self.compile_invocations += 1
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"cc failed ({proc.returncode}): {proc.stderr.strip()[:400]}"
            )
        with open(so_path, "rb") as handle:
            blob = handle.read()
        self.store.put(key, blob)
        return blob

    # -- observability ----------------------------------------------------

    def _omp_status(self) -> str:
        """Probe status without forking a compiler (for stats)."""
        if self.backend != "cc":
            return "n/a"
        if os.environ.get("REPRO_NO_OPENMP"):
            return "disabled"
        with _omp_lock:
            cached = _omp_cache.get(self._cc)
        if cached is None:
            return "unprobed"
        return "yes" if cached[0] else "no"

    def stats(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/healthz`` and stage reports."""
        with self._lock:
            return {
                "backend": self.backend or "none",
                "compiler": self.compiler_identity(),
                "available": self.available(),
                "openmp": self._omp_status(),
                "threads": self.threads,
                "functions_loaded": len(self._functions),
                "parallel_functions": self.parallel_functions,
                "fused_functions": self.fused_functions,
                "compile_invocations": self.compile_invocations,
                "store_loads": self.store_loads,
                "failures": len(self._failed),
                "store": self.store.stats(),
            }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"NativeEngine({s['backend']}): {s['functions_loaded']} loaded "
            f"({s['parallel_functions']} parallel, "
            f"{s['fused_functions']} fused), "
            f"{s['compile_invocations']} compiled, "
            f"{s['store_loads']} store loads, {s['failures']} failures"
        )


def _run_chunks(invoke: Callable[[int, int], None], extent: int,
                threads: int) -> None:
    """Drive ``invoke(lo, hi)`` over disjoint outer-loop slices from a
    transient thread pool (the chunked fallback strategy).

    ctypes foreign calls and ``nogil`` numba kernels release the GIL,
    so the slices genuinely overlap; slices are disjoint in the output,
    so no synchronization is needed beyond the joins.
    """
    bounds = _chunk_bounds(extent, threads)
    if len(bounds) == 1:
        invoke(*bounds[0])
        return
    workers = [
        threading.Thread(target=invoke, args=bound, daemon=True)
        for bound in bounds[1:]
    ]
    for worker in workers:
        worker.start()
    invoke(*bounds[0])
    for worker in workers:
        worker.join()


# -- the process-wide default engine ----------------------------------------

_default_engine: Optional[NativeEngine] = None
_default_lock = threading.Lock()


def default_engine() -> NativeEngine:
    """The process-wide engine (created on first use).

    The pipeline, :class:`~repro.kernels.plan.KernelRunner`, autotuner,
    and server all share it, so its function cache and counters tell
    one coherent story per process.
    """
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = NativeEngine()
        return _default_engine


def configure_default_engine(
    directory: Optional[str] = None,
    backend: Optional[str] = None,
    maxsize: int = 256,
    threads: int = 1,
) -> NativeEngine:
    """Replace the process-wide engine (CLI ``--artifact-store``, tests).

    ``directory`` enables the persistent artifact tier so compiled
    objects survive the process and are shared with concurrent ones;
    ``threads`` sets the engine's default nest thread count.
    """
    global _default_engine
    engine = NativeEngine(
        store=ArtifactStore(maxsize=maxsize, directory=directory),
        backend=backend,
        threads=threads,
    )
    with _default_lock:
        _default_engine = engine
    return engine


def native_available() -> bool:
    """Whether the process-wide engine can compile nests."""
    return default_engine().available()


def native_backend() -> Optional[str]:
    """The process-wide engine's backend name (``None`` if unavailable)."""
    return default_engine().backend


def compiler_fingerprint() -> str:
    """The default engine's compiler identity (``"none"`` without one).

    Part of the autotuner's machine signature: measured decisions that
    involved compiled kernels must not survive a compiler change.
    """
    return default_engine().compiler_identity()


def engine_stats() -> Dict[str, object]:
    """Stats of the process-wide engine (surfaced in ``/healthz``)."""
    return default_engine().stats()
