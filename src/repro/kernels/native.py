"""Compiled native backend for the kernel plans' loop nests.

The paper's synthesis system emitted compiled Fortran for its fused,
tiled loop nests; the GEMM kernel plans (:mod:`repro.kernels.plan`)
stop at numpy calls.  This module closes that gap: each flat term of a
formula sequence lowers to a :class:`NativeSpec` -- a shape-specialized
loop-nest value object -- and a :class:`NativeEngine` turns specs into
machine code:

* **numba backend** -- when numba is importable, the nest's Python
  rendering (:func:`repro.codegen.cgen.py_source`) is ``njit``-ed;
* **cc backend** -- otherwise the C rendering
  (:func:`repro.codegen.cgen.c_source`) is compiled by the system C
  compiler (``cc``/``gcc``/``clang``, discovered once) into a shared
  object loaded through :mod:`ctypes`.

Compiled objects are cached in a content-addressed
:class:`~repro.kernels.artifacts.ArtifactStore` keyed by sha256 of the
nest IR + dtype + backend + compiler identity + flags + package version
(:func:`repro.kernels.artifacts.artifact_key`), so a warm hit loads the
existing shared object with **zero** compiler invocations -- in-process
through the function cache, across processes through the store's disk
tier.

Unavailability is never an error: an environment with neither numba
nor a C compiler reports :meth:`NativeEngine.available` ``False`` and
every caller (pipeline, runner, autotuner) degrades to the GEMM/einsum
path with a structured note.  A nest whose individual compilation
fails is remembered as failed (no retry storms) and its term falls
back the same way.

Unlike the GEMM lowering, native nests are *total* over array terms:
diagonals (repeated indices within an operand) and 3+-operand products
compile fine -- only repeated output indices stay on the einsum path.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.artifacts import ArtifactStore, artifact_key


def _cgen():
    # deferred: repro.codegen's package __init__ imports the interpreter,
    # which imports the executor, which imports this package -- importing
    # the emitter at call time keeps the module graph acyclic
    from repro.codegen import cgen

    return cgen

__all__ = [
    "NativeSpec",
    "NativeEngine",
    "lower_native_term",
    "default_engine",
    "configure_default_engine",
    "native_available",
    "native_backend",
    "compiler_fingerprint",
    "engine_stats",
]

#: optimization flags baked into every cc compile (and the artifact key)
CC_FLAGS: Tuple[str, ...] = ("-O3", "-fPIC", "-shared")

#: summation-loop block size of the emitted nests
NATIVE_TILE = 64

#: dtypes the backends implement (C types exist for both)
_CTYPES = {"float64": "double", "float32": "float"}


@dataclass(frozen=True)
class NativeSpec:
    """One flat term as a shape-specialized loop nest (pickle-safe).

    Loop order is output indices (in target order) followed by summed
    indices (in order of first operand appearance).  ``extents`` are
    resolved at compile time, like every other lowering; ``operands``
    maps each operand axis to its loop position.  The output array is
    indexed by the first ``nout`` loop variables in order.
    """

    names: Tuple[str, ...]
    extents: Tuple[int, ...]
    nout: int
    operands: Tuple[Tuple[int, ...], ...]

    @property
    def out_shape(self) -> Tuple[int, ...]:
        return self.extents[: self.nout]

    def ir(self) -> str:
        """The deterministic nest text that addresses artifacts."""
        return _cgen().render_nest_ir(self)


def lower_native_term(
    refs: Sequence, sum_indices, target: Sequence, bindings
) -> Optional[NativeSpec]:
    """Build the :class:`NativeSpec` of one flat term, or ``None``.

    The only unsupported shape is a repeated index in the *output*
    (no valid dense iteration space); operand diagonals and any
    operand count lower fine.
    """
    target = tuple(target)
    if len(set(target)) != len(target):
        return None
    order: List = list(target)
    seen = set(target)
    for ref in refs:
        for i in ref.indices:
            if i not in seen:
                seen.add(i)
                order.append(i)
    pos = {i: p for p, i in enumerate(order)}
    operands = tuple(
        tuple(pos[i] for i in ref.indices) for ref in refs
    )
    try:
        extents = tuple(i.extent(bindings) for i in order)
    except (KeyError, TypeError, ValueError):
        return None
    return NativeSpec(
        names=tuple(i.name for i in order),
        extents=extents,
        nout=len(target),
        operands=operands,
    )


# -- compiler discovery ------------------------------------------------------


def _find_cc() -> Optional[str]:
    """Path of the system C compiler, or ``None``."""
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not name:
            continue
        path = shutil.which(name)
        if path:
            return path
    return None


_identity_cache: Dict[str, str] = {}


def _cc_identity(cc: str) -> str:
    """Stable identity of one compiler binary: version line + path."""
    cached = _identity_cache.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        ).stdout
        line = out.splitlines()[0].strip() if out else os.path.basename(cc)
    except (OSError, subprocess.SubprocessError):
        line = os.path.basename(cc)
    identity = f"{line} [{cc}]"
    _identity_cache[cc] = identity
    return identity


def _numba():
    """The numba module when importable (and not disabled), else None."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:
        import numba  # type: ignore

        return numba
    except Exception:
        return None


# -- the engine --------------------------------------------------------------


class NativeEngine:
    """Compiles :class:`NativeSpec` nests and caches the results.

    ``backend`` forces ``"numba"`` or ``"cc"`` (default: numba when
    importable, else cc when a compiler exists, else unavailable);
    ``"none"`` forces an unavailable engine, which is how the tests --
    and the pipeline's degraded mode -- model a machine without any
    compiler;
    ``store`` is the content-addressed :class:`ArtifactStore` (a
    private in-memory store by default -- pass one with a ``directory``
    to share compiled objects across processes); ``tile`` is the
    summation blocking factor baked into emitted nests.

    Thread-safe: the serving layer drives one process-wide engine from
    concurrent executor threads.

    Counters: ``compile_invocations`` (compiler forks / JIT builds),
    ``store_loads`` (functions revived from stored bytes with no
    compile), ``failures`` (specs whose compile failed; remembered so
    they are not retried).
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        backend: Optional[str] = None,
        tile: int = NATIVE_TILE,
    ) -> None:
        if backend not in (None, "numba", "cc", "none"):
            raise ValueError(
                f"unknown native backend {backend!r} "
                "(use 'numba', 'cc', or 'none')"
            )
        self.store = store if store is not None else ArtifactStore()
        self.tile = tile
        self._lock = threading.Lock()
        self._functions: Dict[str, Callable] = {}
        self._failed: Dict[str, str] = {}
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        self.compile_invocations = 0
        self.store_loads = 0
        self._numba = _numba() if backend in (None, "numba") else None
        self._cc = _find_cc() if backend in (None, "cc") else None
        if backend == "numba" and self._numba is None:
            self.backend: Optional[str] = None
        elif backend == "cc" and self._cc is None:
            self.backend = None
        elif self._numba is not None and backend in (None, "numba"):
            self.backend = "numba"
        elif self._cc is not None:
            self.backend = "cc"
        else:
            self.backend = None

    # -- identity ---------------------------------------------------------

    def available(self) -> bool:
        """Whether this machine can compile nests at all."""
        return self.backend is not None

    def unavailable_reason(self) -> str:
        return (
            "no native backend: numba not importable and no C compiler "
            "(cc/gcc/clang) on PATH"
        )

    def compiler_identity(self) -> str:
        """What produces the machine code (part of every artifact key)."""
        if self.backend == "numba":
            return f"numba {self._numba.__version__}"
        if self.backend == "cc":
            return _cc_identity(self._cc)
        return "none"

    def flags(self) -> Tuple[str, ...]:
        base = CC_FLAGS if self.backend == "cc" else ()
        return base + (f"tile={self.tile}",)

    def key(self, spec: NativeSpec, dtype) -> str:
        """The content-addressed artifact key of ``(spec, dtype)`` here."""
        return artifact_key(
            spec.ir(),
            np.dtype(dtype).str,
            self.backend or "none",
            self.compiler_identity(),
            self.flags(),
        )

    # -- compilation ------------------------------------------------------

    def function(
        self, spec: NativeSpec, dtype=np.float64
    ) -> Optional[Callable]:
        """A callable ``fn(coef, ops, out)`` for the nest, or ``None``.

        ``ops`` is the sequence of C-contiguous operand arrays and
        ``out`` the C-contiguous output buffer, all of ``dtype``; the
        call **accumulates** (the caller zeroes ``out`` first when it
        wants assignment).  Returns ``None`` when the engine is
        unavailable, the dtype unsupported, or compilation failed
        (failures are remembered, not retried).
        """
        if self.backend is None:
            return None
        dtype = np.dtype(dtype)
        if dtype.name not in _CTYPES:
            return None
        key = self.key(spec, dtype)
        with self._lock:
            fn = self._functions.get(key)
            if fn is not None:
                return fn
            if key in self._failed:
                return None
            try:
                if self.backend == "numba":
                    fn = self._build_numba(spec, dtype, key)
                else:
                    fn = self._build_cc(spec, dtype, key)
            except Exception as exc:  # compile errors degrade, never raise
                self._failed[key] = f"{type(exc).__name__}: {exc}"
                return None
            self._functions[key] = fn
            return fn

    def failure(self, spec: NativeSpec, dtype=np.float64) -> Optional[str]:
        """The recorded compile failure for ``(spec, dtype)``, if any."""
        with self._lock:
            return self._failed.get(self.key(spec, dtype))

    # numba: the artifact is the in-process dispatcher; the store keeps
    # the rendered source so warm processes skip nothing but the text.
    def _build_numba(self, spec: NativeSpec, dtype, key: str) -> Callable:
        source = _cgen().py_source(spec, tile=self.tile)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<nest {key[:12]}>", "exec"), namespace)
        self.compile_invocations += 1
        jitted = self._numba.njit(cache=False)(namespace["kern"])
        nops = len(spec.operands)

        def call(coef: float, ops, out) -> None:
            flat = [ops[k].ravel() for k in range(nops)]
            jitted(float(coef), *flat, out.ravel())

        return call

    def _build_cc(self, spec: NativeSpec, dtype, key: str) -> Callable:
        path = self._load_path(key)  # counts store_loads on a warm hit
        if path is None:
            blob = self._compile_cc(spec, dtype, key)
            path = self.store.disk_path(key)
            if path is None:
                path = self._spill(key, blob)
        lib = ctypes.CDLL(path)
        fn = lib.kern
        ptr = ctypes.POINTER(
            ctypes.c_double if dtype == np.float64 else ctypes.c_float
        )
        nops = len(spec.operands)
        fn.argtypes = [ctypes.c_double] + [ptr] * (nops + 1)
        fn.restype = None

        def call(coef: float, ops, out) -> None:
            args = [ops[k].ctypes.data_as(ptr) for k in range(nops)]
            fn(ctypes.c_double(coef), *args, out.ctypes.data_as(ptr))

        call._lib = lib  # keep the shared object mapped while callable
        return call

    def _load_path(self, key: str) -> Optional[str]:
        """A loadable path for an already-stored artifact, else None."""
        path = self.store.disk_path(key)
        if path is not None:
            # count the store hit (promotes bytes into the memory tier)
            self.store.get(key)
            self.store_loads += 1
            return path
        found = self.store.get(key)
        if found is not None:
            blob, _tier = found
            self.store_loads += 1  # memory-tier revival, no compile
            return self._spill(key, blob)
        return None

    def _spill(self, key: str, blob: bytes) -> str:
        """Write artifact bytes to engine scratch so ctypes can load."""
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(
                prefix="repro-native-"
            )
        path = os.path.join(self._scratch.name, f"{key}.so")
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        return path

    def _compile_cc(self, spec: NativeSpec, dtype, key: str) -> bytes:
        source = _cgen().c_source(
            spec, _CTYPES[np.dtype(dtype).name], self.tile
        )
        if self._scratch is None:
            self._scratch = tempfile.TemporaryDirectory(
                prefix="repro-native-"
            )
        c_path = os.path.join(self._scratch.name, f"{key}.c")
        so_path = os.path.join(self._scratch.name, f"{key}.so")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(source)
        cmd = [self._cc, *CC_FLAGS, "-o", so_path, c_path]
        self.compile_invocations += 1
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"cc failed ({proc.returncode}): {proc.stderr.strip()[:400]}"
            )
        with open(so_path, "rb") as handle:
            blob = handle.read()
        self.store.put(key, blob)
        return blob

    # -- observability ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/healthz`` and stage reports."""
        with self._lock:
            return {
                "backend": self.backend or "none",
                "compiler": self.compiler_identity(),
                "available": self.available(),
                "functions_loaded": len(self._functions),
                "compile_invocations": self.compile_invocations,
                "store_loads": self.store_loads,
                "failures": len(self._failed),
                "store": self.store.stats(),
            }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"NativeEngine({s['backend']}): {s['functions_loaded']} loaded, "
            f"{s['compile_invocations']} compiled, "
            f"{s['store_loads']} store loads, {s['failures']} failures"
        )


# -- the process-wide default engine ----------------------------------------

_default_engine: Optional[NativeEngine] = None
_default_lock = threading.Lock()


def default_engine() -> NativeEngine:
    """The process-wide engine (created on first use).

    The pipeline, :class:`~repro.kernels.plan.KernelRunner`, autotuner,
    and server all share it, so its function cache and counters tell
    one coherent story per process.
    """
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = NativeEngine()
        return _default_engine


def configure_default_engine(
    directory: Optional[str] = None,
    backend: Optional[str] = None,
    maxsize: int = 256,
) -> NativeEngine:
    """Replace the process-wide engine (CLI ``--artifact-store``, tests).

    ``directory`` enables the persistent artifact tier so compiled
    objects survive the process and are shared with concurrent ones.
    """
    global _default_engine
    engine = NativeEngine(
        store=ArtifactStore(maxsize=maxsize, directory=directory),
        backend=backend,
    )
    with _default_lock:
        _default_engine = engine
    return engine


def native_available() -> bool:
    """Whether the process-wide engine can compile nests."""
    return default_engine().available()


def native_backend() -> Optional[str]:
    """The process-wide engine's backend name (``None`` if unavailable)."""
    return default_engine().backend


def compiler_fingerprint() -> str:
    """The default engine's compiler identity (``"none"`` without one).

    Part of the autotuner's machine signature: measured decisions that
    involved compiled kernels must not survive a compiler change.
    """
    return default_engine().compiler_identity()


def engine_stats() -> Dict[str, object]:
    """Stats of the process-wide engine (surfaced in ``/healthz``)."""
    return default_engine().stats()
