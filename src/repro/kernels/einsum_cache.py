"""Process-wide cache of ``np.einsum_path`` results.

``np.einsum(spec, *ops, optimize=True)`` re-runs the greedy
contraction-path search on **every call** -- for the small-to-moderate
tensors the synthesis system executes at test and serving scale, that
planning overhead rivals or exceeds the arithmetic.  The path depends
only on the subscript spec and the operand signatures, so it is cached
here under ``(spec, (shape, dtype)...)`` and replayed with
``optimize=<path>``.

Replaying an explicitly computed path is **bit-for-bit** identical to
``optimize=True``: numpy resolves ``optimize=True`` to the same greedy
path internally, and the execution machinery is shared.  The reference
executor therefore stays the repository's semantic oracle unchanged;
it just stops re-planning (see ``tests/test_kernels.py`` for the
bit-for-bit assertion).

The cache is a bounded LRU (`maxsize` entries); eviction only costs a
re-plan, never correctness.  It is shared by every thread of the
process -- the serving layer hammers it from a pool -- so all structure
and counter mutation happens under one lock.  The path search itself
runs outside the lock; a race between two threads planning the same key
costs one redundant search, never a wrong path.

Keying includes the operand dtypes, not just shapes: the greedy
optimizer weighs intermediate sizes in *bytes*, so a float32 call may
legitimately pick a different path than a float64 call of the same
shapes -- serving one the other's path would silently change the
cost-model decision (same audit that put dtype into the artifact and
tuning keys).

Keys also carry the **semiring id**: ``np.einsum`` only evaluates the
``plus_times`` algebra, so any other registered semiring dispatches to
:func:`repro.semiring.semiring_einsum` (broadcast-combine-then-reduce)
and its entries must never collide with the classical paths.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "cached_einsum",
    "cached_einsum_path",
    "einsum_path_cache_stats",
    "clear_einsum_path_cache",
]

#: LRU bound; paths are tiny (a list of index pairs), so this is generous.
_MAXSIZE = 4096

_CacheKey = Tuple[str, str, Tuple[Tuple[Tuple[int, ...], str], ...]]
_paths: "OrderedDict[_CacheKey, List]" = OrderedDict()
_hits = 0
_misses = 0
_lock = threading.Lock()


def _signature(operands) -> Tuple[Tuple[Tuple[int, ...], str], ...]:
    return tuple(
        (np.shape(op), np.asarray(op).dtype.str) for op in operands
    )


def cached_einsum_path(
    spec: str, *operands: np.ndarray, semiring: str = "plus_times"
) -> List:
    """The einsum contraction path for ``spec`` on these operands.

    Computed once per ``(spec, semiring, shapes+dtypes)`` via
    ``np.einsum_path`` with the default greedy optimizer (the same one
    ``optimize=True`` uses), then served from the LRU.  Thread-safe.
    """
    global _hits, _misses
    key = (spec, semiring, _signature(operands))
    with _lock:
        path = _paths.get(key)
        if path is not None:
            _paths.move_to_end(key)
            _hits += 1
            return path
        _misses += 1
    # plan outside the lock: the search can be the expensive part, and a
    # duplicate race only re-plans, it cannot produce a wrong entry
    path = np.einsum_path(spec, *operands, optimize=True)[0]
    with _lock:
        _paths[key] = path
        _paths.move_to_end(key)
        while len(_paths) > _MAXSIZE:
            _paths.popitem(last=False)
    return path


def cached_einsum(
    spec: str,
    *operands: np.ndarray,
    out: Optional[np.ndarray] = None,
    semiring: str = "plus_times",
) -> np.ndarray:
    """``np.einsum(spec, *operands, optimize=True)`` without re-planning.

    Numerically identical to the uncached call (same path, same
    execution kernels); the only difference is that the path search runs
    once per operand signature instead of once per call.

    A non-default ``semiring`` evaluates the same subscript spec under
    that algebra via :func:`repro.semiring.semiring_einsum` (einsum
    itself cannot fold with anything but ``(+, ×)``).
    """
    if semiring != "plus_times":
        from repro.semiring import get_semiring, semiring_einsum

        return semiring_einsum(
            spec, *operands, semiring=get_semiring(semiring), out=out
        )
    path = cached_einsum_path(spec, *operands, semiring=semiring)
    return np.einsum(spec, *operands, optimize=path, out=out)


def einsum_path_cache_stats() -> Dict[str, int]:
    """``{"entries", "hits", "misses"}`` counters of the process cache."""
    with _lock:
        return {"entries": len(_paths), "hits": _hits, "misses": _misses}


def clear_einsum_path_cache() -> None:
    """Drop all cached paths and reset the counters (test isolation)."""
    global _hits, _misses
    with _lock:
        _paths.clear()
        _hits = 0
        _misses = 0
