"""GEMM lowering of binary tensor contractions.

A binary contraction ``C[out] = sum(k) A[ia] * B[ib]`` is an instance of
(batched) matrix multiplication once its indices are classified:

* **batch** -- in A, in B, and in the output (carried through);
* **m** -- in A and the output only;
* **n** -- in B and the output only;
* **k** -- in A and B, summed (the contraction);
* indices summed but present in only one operand are reduced away
  *before* the multiply (``lred`` / ``rred``).

The lowering is then: sum out the single-operand axes, permute each
operand to ``(batch..., m..., k...)`` / ``(batch..., k..., n...)``,
reshape the ``m``/``k``/``n`` groups flat, call ``np.matmul`` (which
hits the BLAS GEMM and broadcasts over the batch dims), reshape back,
and un-permute to the requested output order.

Everything shape-independent -- the axis classification, both
permutations, the group arity counts, the output un-permute -- is
computed **once** by :func:`lower_binary_term` and stored as a
:class:`GemmSpec` (a pickle-safe tuple-of-ints value object).  At run
time only trivial shape products remain.  Degenerate terms (repeated
indices within an operand, indices missing from both operands) return
``None`` and the caller falls back to the cached-path einsum
(:mod:`repro.kernels.einsum_cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.expr.indices import Index
from repro.robustness.errors import ReproError

__all__ = ["GemmSpec", "lower_binary_term", "exec_gemm", "exec_gemm_arena"]


def _require_plus_times(semiring: str, where: str) -> None:
    """GEMM *is* the ``(+, ×)`` algebra -- ``np.matmul`` hard-codes it.

    Reaching this lowering under any other semiring would silently
    compute classical sums of products where the caller asked for, say,
    tropical shortest paths; that must be a structured error, never a
    wrong answer.  The kernel planner routes non-default algebras to
    the native/einsum reduction paths and never gets here.
    """
    if semiring != "plus_times":
        raise ReproError(
            f"GEMM lowering only implements the plus_times semiring; "
            f"'{semiring}' contractions must use the native or einsum "
            "reduction path",
            stage="codegen",
            semiring=semiring,
            where=where,
        )


@dataclass(frozen=True)
class GemmSpec:
    """Shape-independent lowering of one binary contraction to GEMM.

    ``lred``/``rred`` are operand axes summed before the multiply;
    ``lperm``/``rperm`` permute the remaining axes to
    ``(batch..., m..., k...)`` and ``(batch..., k..., n...)``;
    ``nb``/``nm``/``nk``/``nn`` are the group arities; ``operm``
    un-permutes the ``(batch..., m..., n...)`` result to the requested
    output index order.
    """

    lred: Tuple[int, ...]
    rred: Tuple[int, ...]
    lperm: Tuple[int, ...]
    rperm: Tuple[int, ...]
    nb: int
    nm: int
    nk: int
    nn: int
    operm: Tuple[int, ...]


def lower_binary_term(
    left: Sequence[Index],
    right: Sequence[Index],
    sum_indices: frozenset,
    out: Sequence[Index],
    semiring: str = "plus_times",
) -> Optional[GemmSpec]:
    """Classify a binary term's indices and build its :class:`GemmSpec`.

    Returns ``None`` for the degenerate cases GEMM cannot express
    directly (repeated indices within an operand -- diagonals/traces --
    or an output index absent from both operands); callers fall back to
    einsum there.  A non-``plus_times`` ``semiring`` raises a
    structured :class:`~repro.robustness.errors.ReproError`: GEMM can
    never evaluate it, and declining loudly beats a silent wrong
    answer.
    """
    _require_plus_times(semiring, "lower_binary_term")
    left = tuple(left)
    right = tuple(right)
    out = tuple(out)
    if len(set(left)) != len(left) or len(set(right)) != len(right):
        return None  # diagonal/trace within one operand
    if len(set(out)) != len(out):
        return None
    lset, rset, oset = set(left), set(right), set(out)
    if not oset <= (lset | rset):
        return None  # output index produced by neither operand

    # group orders: batch/m/n follow their appearance in the output (so
    # the GEMM result needs the least un-permuting); k follows the left
    # operand's order.  All deterministic, all shape-independent.
    batch = tuple(i for i in out if i in lset and i in rset)
    m = tuple(i for i in out if i in lset and i not in rset)
    n = tuple(i for i in out if i in rset and i not in lset)
    k = tuple(
        i for i in left if i in sum_indices and i in rset
    )
    lonly = tuple(i for i in left if i in sum_indices and i not in rset)
    ronly = tuple(i for i in right if i in sum_indices and i not in lset)

    lred = tuple(left.index(i) for i in lonly)
    rred = tuple(right.index(i) for i in ronly)
    lkept = tuple(i for i in left if i not in lonly)
    rkept = tuple(i for i in right if i not in ronly)
    if set(lkept) != set(batch) | set(m) | set(k):
        return None  # e.g. an index shared with the right but unused
    if set(rkept) != set(batch) | set(k) | set(n):
        return None

    lperm = tuple(lkept.index(i) for i in batch + m + k)
    rperm = tuple(rkept.index(i) for i in batch + k + n)
    cur = batch + m + n
    operm = tuple(cur.index(i) for i in out)
    return GemmSpec(
        lred=lred,
        rred=rred,
        lperm=lperm,
        rperm=rperm,
        nb=len(batch),
        nm=len(m),
        nk=len(k),
        nn=len(n),
        operm=operm,
    )


def _identity(perm: Tuple[int, ...]) -> bool:
    return perm == tuple(range(len(perm)))


def exec_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    lred: Tuple[int, ...],
    rred: Tuple[int, ...],
    lperm: Tuple[int, ...],
    rperm: Tuple[int, ...],
    nb: int,
    nm: int,
    nk: int,
    nn: int,
    operm: Tuple[int, ...],
    semiring: str = "plus_times",
) -> np.ndarray:
    """Execute a lowered binary contraction (allocation-per-call form).

    This is the standalone entry point the generated numpy kernels
    (:mod:`repro.codegen.npgen`) call; :class:`~repro.kernels.plan.
    KernelRunner` uses :func:`exec_gemm_arena` instead to reuse buffers.
    """
    _require_plus_times(semiring, "exec_gemm")
    a = np.asarray(a)
    b = np.asarray(b)
    if lred:
        a = a.sum(axis=lred)
    if rred:
        b = b.sum(axis=rred)
    at = a.transpose(lperm)
    bt = b.transpose(rperm)
    bshape = at.shape[:nb]
    mshape = at.shape[nb : nb + nm]
    kshape = at.shape[nb + nm :]
    nshape = bt.shape[nb + nk :]
    a2 = at.reshape(bshape + (prod(mshape), prod(kshape)))
    b2 = bt.reshape(bshape + (prod(kshape), prod(nshape)))
    c = np.matmul(a2, b2).reshape(bshape + mshape + nshape)
    return c if _identity(operm) else c.transpose(operm)


def _pack_operand(x, perm, nlead, ngroups, arena, taken: List):
    """Permute ``x`` and flatten its trailing groups, copying through an
    arena buffer only when the permuted view is not contiguous."""
    xt = x.transpose(perm) if not _identity(perm) else x
    lead = xt.shape[: nlead]
    g1 = prod(xt.shape[nlead : nlead + ngroups[0]])
    g2 = prod(xt.shape[nlead + ngroups[0] :])
    target = lead + (g1, g2)
    if xt.flags.c_contiguous:
        return xt.reshape(target)
    buf = arena.take(target, xt.dtype)
    np.copyto(buf.reshape(xt.shape), xt)
    taken.append(buf)
    return buf


def exec_gemm_arena(
    a: np.ndarray,
    b: np.ndarray,
    spec: GemmSpec,
    arena,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Arena-buffered twin of :func:`exec_gemm`.

    Returns ``(result_view, live_buffers)``: the view aliases arena
    buffers listed in ``live_buffers``, which the caller must release
    back to the arena once the term has been accumulated.  Pack scratch
    is released internally right after the matmul.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    pack_taken: List[np.ndarray] = []
    live: List[np.ndarray] = []
    if spec.lred:
        red = arena.take(
            tuple(
                s
                for ax, s in enumerate(a.shape)
                if ax not in spec.lred
            ),
            a.dtype,
        )
        np.sum(a, axis=spec.lred, out=red)
        pack_taken.append(red)
        a = red
    if spec.rred:
        red = arena.take(
            tuple(
                s
                for ax, s in enumerate(b.shape)
                if ax not in spec.rred
            ),
            b.dtype,
        )
        np.sum(b, axis=spec.rred, out=red)
        pack_taken.append(red)
        b = red
    a2 = _pack_operand(a, spec.lperm, spec.nb, (spec.nm, spec.nk), arena, pack_taken)
    b2 = _pack_operand(b, spec.rperm, spec.nb, (spec.nk, spec.nn), arena, pack_taken)
    at_shape = (
        a.transpose(spec.lperm).shape if not _identity(spec.lperm) else a.shape
    )
    bt_shape = (
        b.transpose(spec.rperm).shape if not _identity(spec.rperm) else b.shape
    )
    bshape = at_shape[: spec.nb]
    mshape = at_shape[spec.nb : spec.nb + spec.nm]
    nshape = bt_shape[spec.nb + spec.nk :]
    cdtype = np.result_type(a2.dtype, b2.dtype)
    cbuf = arena.take(a2.shape[:-1] + (b2.shape[-1],), cdtype)
    np.matmul(a2, b2, out=cbuf)
    for buf in pack_taken:
        arena.release(buf)
    live.append(cbuf)
    c = cbuf.reshape(bshape + mshape + nshape)
    if not _identity(spec.operm):
        c = c.transpose(spec.operm)
    return c, live
