"""Tile-size search for space-time trade-offs (paper Section 5, step 2).

Given a fusion/recomputation configuration from
:func:`repro.spacetime.tradeoff.tradeoff_search`, the recomputation
indices are split into tiling / intra-tile loop pairs: fusion then
happens at *tile* granularity, so recomputation is performed once per
tiling-loop iteration instead of once per index value, in exchange for
block-sized (``B``-extent) storage for the temporaries whose fused
dimensions were tiled (paper Fig. 4).

``search_tile_sizes`` evaluates candidate block sizes (doubling from 1,
as in Section 6's search-space rule) on the *actual generated loop
structure* -- operation count and memory are measured by the IR
analyses, not estimated -- and returns the cheapest structure within the
memory limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.expr.indices import Bindings, Index
from repro.codegen.builder import apply_tiling, build_fused
from repro.codegen.loops import Block, loop_op_count, total_memory
from repro.fusion.memopt import FusionResult
from repro.spacetime.tradeoff import EdgeChoice, TradeoffSolution


def _without(indices, drop) -> frozenset:
    return frozenset(i for i in indices if i not in drop)


def tiled_structure(
    solution: TradeoffSolution,
    tile_sizes: Mapping[Index, int],
) -> Block:
    """Realize ``solution`` with the given indices tiled.

    Tiled indices are removed from every fused set (fusion happens at
    tile granularity through the hoisted tile loops); the remaining
    fusion structure is rebuilt and then tiled with the root output kept
    global.
    """
    drop = set(tile_sizes)
    if not drop:
        return build_fused(solution.decisions())

    edges = {
        key: EdgeChoice(
            _without(choice.fused, drop), _without(choice.redundant, drop)
        )
        for key, choice in solution.edges.items()
    }
    families = {
        key: tuple(
            sorted(
                {s2 for s2 in (_without(s, drop) for s in fams) if s2},
                key=lambda s: (len(s), sorted(i.name for i in s)),
            )
        )
        for key, fams in (solution._families or {}).items()
    }
    reduced = TradeoffSolution(
        solution.root,
        solution.memory,
        solution.ops,
        edges,
        solution.bindings,
    )
    reduced._families = families
    fused = build_fused(reduced.decisions())
    return apply_tiling(
        fused, dict(tile_sizes), keep_global=[solution.root.array.name]
    )


@dataclass
class TileSearchResult:
    """Outcome of the block-size search."""

    block_size: int
    tile_sizes: Dict[Index, int]
    structure: Block
    ops: int
    memory: int
    candidates: List[Dict[str, int]] = field(default_factory=list)


def search_tile_sizes(
    solution: TradeoffSolution,
    memory_limit: Optional[int] = None,
    bindings: Optional[Bindings] = None,
    include_output: bool = False,
    budget=None,
) -> TileSearchResult:
    """Search uniform block sizes (1, 2, 4, ..., N) for the solution's
    recomputation indices; return the minimum-operation structure whose
    total memory fits the limit.

    ``include_output=False`` excludes the root output array from the
    memory measure (it exists in every variant).

    ``budget`` bounds the candidate evaluations; on exhaustion the best
    feasible candidate found so far is returned (anytime search), or
    :class:`~repro.robustness.errors.BudgetExceeded` propagates when
    none was evaluated yet.
    """
    from repro.robustness.budget import as_tracker
    from repro.robustness.errors import BudgetExceeded

    tracker = as_tracker(budget)
    indices = sorted(solution.recomputation_indices())
    if not indices:
        block = tiled_structure(solution, {})
        mem = total_memory(block, bindings)
        if not include_output:
            mem -= _output_size(solution, bindings)
        return TileSearchResult(
            0, {}, block, loop_op_count(block, bindings), mem
        )

    max_extent = max(i.extent(bindings) for i in indices)
    sizes: List[int] = []
    b = 1
    while b < max_extent:
        sizes.append(b)
        b *= 2
    sizes.append(max_extent)

    best: Optional[TileSearchResult] = None
    candidates: List[Dict[str, int]] = []
    for b in sizes:
        if tracker is not None:
            try:
                tracker.tick(1, stage="spacetime")
            except BudgetExceeded as exc:
                if best is None:
                    raise
                tracker.degrade(
                    "spacetime", exc, "best tile size found so far"
                )
                break  # anytime: keep the best candidate found so far
        tiles = {i: min(b, i.extent(bindings)) for i in indices}
        block = tiled_structure(solution, tiles)
        ops = loop_op_count(block, bindings)
        mem = total_memory(block, bindings)
        if not include_output:
            mem -= _output_size(solution, bindings)
        feasible = memory_limit is None or mem <= memory_limit
        candidates.append(
            {"B": b, "ops": ops, "memory": mem, "feasible": int(feasible)}
        )
        if not feasible:
            continue
        if best is None or ops < best.ops or (ops == best.ops and mem < best.memory):
            best = TileSearchResult(b, tiles, block, ops, mem)
    if best is None:
        raise ValueError(
            "no tile size satisfies the memory limit; the space-time "
            "trade-off cannot make this configuration fit"
        )
    best.candidates = candidates
    return best


def _output_size(solution: TradeoffSolution, bindings: Optional[Bindings]) -> int:
    from repro.expr.indices import total_extent

    return total_extent(solution.root.array.indices, bindings)


def refine_tile_sizes(
    solution: TradeoffSolution,
    start: TileSearchResult,
    memory_limit: Optional[int] = None,
    bindings: Optional[Bindings] = None,
    include_output: bool = False,
    max_rounds: int = 4,
) -> TileSearchResult:
    """Coordinate-descent refinement to *per-index* tile sizes.

    Starting from a uniform-B solution (see :func:`search_tile_sizes`),
    each recomputation index's block size is varied over the doubling
    candidates while the others are held fixed, keeping any strict
    improvement in (ops, memory) under the limit.  Converges in a few
    rounds; never returns something worse than ``start``.
    """
    if not start.tile_sizes:
        return start
    best_tiles = dict(start.tile_sizes)
    best_ops, best_mem = start.ops, start.memory
    best_structure = start.structure
    out_size = _output_size(solution, bindings) if not include_output else 0

    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for idx in sorted(best_tiles):
            extent = idx.extent(bindings)
            candidates = []
            b = 1
            while b < extent:
                candidates.append(b)
                b *= 2
            candidates.append(extent)
            for b in candidates:
                if b == best_tiles[idx]:
                    continue
                trial = dict(best_tiles)
                trial[idx] = b
                block = tiled_structure(solution, trial)
                ops = loop_op_count(block, bindings)
                mem = total_memory(block, bindings) - out_size
                if memory_limit is not None and mem > memory_limit:
                    continue
                if ops < best_ops or (ops == best_ops and mem < best_mem):
                    best_tiles = trial
                    best_ops, best_mem = ops, mem
                    best_structure = block
                    improved = True
    return TileSearchResult(
        max(best_tiles.values()),
        best_tiles,
        best_structure,
        best_ops,
        best_mem,
        start.candidates,
    )
