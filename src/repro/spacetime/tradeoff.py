"""Fusion + redundant-computation dynamic program (paper Section 5).

Extends the memory-minimization DP with the paper's redundant-loop trick
(Fig. 3 / Fig. 7(a)): an edge may additionally be "fused" on consumer
loops the producer does not naturally have, wrapping the producer's
computation inside them.  This enables fusions that eliminate large
dimensions at the price of re-executing the producer's subtree once per
iteration of each redundant loop.

The DP therefore carries *two* metrics per configuration -- total
temporary memory and total operation count -- and keeps the pareto
frontier at every node ("a set of pareto-optimal fusion/recomputation
configurations, in which the recomputation cost is used as a third
metric").  Solutions exceeding the memory limit are pruned.

State.  Fusion legality is the same scope-nesting condition as before,
tracked here in *set* form: the state key at a subtree root is the fused
index set on the parent edge plus the subtree's *visible chain* -- the
nested proper subsets of that set already committed inside the subtree.
At a join, the family of all incident fused sets and visible-chain
members must form an inclusion chain; realizable loop orders are then
reconstructed top-down by layering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.expr.indices import Bindings, Index, total_extent
from repro.fusion.memopt import FusionDecision, FusionResult, reduced_size
from repro.fusion.tree import CompNode
from repro.opmin.cost import statement_op_count

SetKey = FrozenSet[Index]
Chain = Tuple[SetKey, ...]  # sorted by (size, names); nested proper subsets


@dataclass(frozen=True)
class EdgeChoice:
    """Fusion decision for one tree edge."""

    fused: SetKey  # natural common indices fused (eliminate array dims)
    redundant: SetKey  # consumer loops wrapped redundantly around producer

    @property
    def all(self) -> SetKey:
        return self.fused | self.redundant


@dataclass
class TradeoffSolution:
    """One pareto point: a full fusion/recomputation configuration."""

    root: CompNode
    memory: int
    ops: int
    edges: Dict[int, EdgeChoice]  # keyed by id(child node)
    bindings: Optional[Bindings] = None
    _families: Dict[int, Tuple[SetKey, ...]] = None  # keyed by id(node)

    def decisions(self) -> FusionResult:
        """Realize loop orders and package as a FusionResult for
        :func:`repro.codegen.builder.build_fused`."""
        decisions: Dict[int, FusionDecision] = {}

        def realize(node: CompNode, pseq: Tuple[Index, ...]) -> None:
            if node.is_leaf:
                decisions[id(node)] = FusionDecision(node, pseq, ())
                return
            child_sets = []
            for child in node.children:
                choice = self.edges.get(id(child))
                child_sets.append(choice.all if choice else frozenset())
            # layered order: every family set becomes a prefix
            family = sorted(
                {frozenset(pseq), *child_sets, *self._families.get(id(node), ())},
                key=lambda s: (len(s), sorted(i.name for i in s)),
            )
            order: List[Index] = list(pseq)
            placed = set(pseq)
            for fam in family:
                extra = sorted(fam - placed)
                if not fam <= placed | set(extra):
                    raise AssertionError("family is not an inclusion chain")
                order.extend(extra)
                placed.update(extra)
            rest = sorted(set(node.loop_indices) - placed)
            order.extend(rest)
            placed.update(rest)

            child_seqs = []
            for child, cset in zip(node.children, child_sets):
                cseq = tuple(order[: len(cset)])
                if set(cseq) != set(cset):  # pragma: no cover - invariant
                    raise AssertionError("layering failed to realize a prefix")
                child_seqs.append(cseq)
                realize(child, cseq)
            decisions[id(node)] = FusionDecision(
                node, pseq, tuple(child_seqs), tuple(order)
            )

        realize(self.root, ())
        return FusionResult(self.root, self.memory, decisions, self.bindings)

    def recomputation_indices(self) -> SetKey:
        """Union of all redundant index sets (the tiling candidates)."""
        out: SetKey = frozenset()
        for choice in self.edges.values():
            out |= choice.redundant
        return out


def _subsets(items: Sequence[Index]) -> List[SetKey]:
    out = [frozenset()]
    items = sorted(items)
    for r in range(1, len(items) + 1):
        out.extend(
            frozenset(c) for c in itertools.combinations(items, r)
        )
    return out


def _is_chain(family: Sequence[SetKey]) -> bool:
    ordered = sorted(family, key=len)
    for a, b in zip(ordered, ordered[1:]):
        if not a <= b:
            return False
    return True


def _chain_key(sets: Sequence[SetKey]) -> Chain:
    uniq = sorted(
        set(sets), key=lambda s: (len(s), sorted(i.name for i in s))
    )
    return tuple(uniq)


def tradeoff_search(
    root: CompNode,
    bindings: Optional[Bindings] = None,
    memory_limit: Optional[int] = None,
    allow_redundancy: bool = True,
    max_redundant_per_edge: int = 4,
    budget=None,
) -> List[TradeoffSolution]:
    """Pareto frontier of (memory, ops) fusion/recompute configurations.

    Returns solutions sorted by memory (ascending); ops is then
    descending.  ``memory_limit`` prunes during the search (the paper's
    "solutions exceeding the memory limit are pruned out").

    ``budget`` bounds the pareto DP (each merged candidate ticks); on
    exhaustion :class:`~repro.robustness.errors.BudgetExceeded`
    propagates -- the pipeline degrades to the fused-but-untiled
    structure from memory minimization.
    """
    from repro.robustness.budget import as_tracker

    tracker = as_tracker(budget)
    # per node: {(S, visible_chain): [(mem, ops, choice), ...]}  where
    # choice = tuple per child of (child_key, entry_index, redundant_set)
    tables: Dict[int, Dict[Tuple[SetKey, Chain], List[Tuple]]] = {}
    stmt_ops_cache: Dict[int, int] = {}

    def stmt_ops(node: CompNode) -> int:
        hit = stmt_ops_cache.get(id(node))
        if hit is None:
            hit = statement_op_count(node.stmt, bindings)
            stmt_ops_cache[id(node)] = hit
        return hit

    def pareto_insert(entries: List[Tuple], cand: Tuple) -> None:
        mem, ops = cand[0], cand[1]
        for e in entries:
            if e[0] <= mem and e[1] <= ops:
                return
        entries[:] = [e for e in entries if not (mem <= e[0] and ops <= e[1])]
        entries.append(cand)

    def solve(node: CompNode) -> Dict[Tuple[SetKey, Chain], List[Tuple]]:
        cached = tables.get(id(node))
        if cached is not None:
            return cached
        if node.is_leaf:
            table = {(frozenset(), ()): [(0, 0, ())]}
            tables[id(node)] = table
            return table

        # per child: list of (S_edge, visible, mem, ops, backref)
        per_child: List[List[Tuple]] = []
        for child, ok in zip(node.children, node.fusible):
            sol = solve(child)
            opts: List[Tuple] = []
            if not ok or child.is_leaf:
                for (s, vis), entries in sol.items():
                    if s:
                        continue
                    for k, (mem, ops, _) in enumerate(entries):
                        opts.append(
                            (frozenset(), vis, mem, ops, ((s, vis), k, frozenset()))
                        )
                per_child.append(opts)
                continue
            common_dims = (
                node.loop_indices
                & child.loop_indices
                & set(child.array.indices)
            )
            red_pool: List[Index] = []
            if allow_redundancy:
                red_pool = sorted(node.loop_indices - child.loop_indices)[
                    : max(0, max_redundant_per_edge)
                ]
            red_subsets = _subsets(red_pool) if red_pool else [frozenset()]
            for (s, vis), entries in sol.items():
                if not s <= common_dims:
                    continue
                for red in red_subsets:
                    s_edge = s | red
                    mult = total_extent(red, bindings) if red else 1
                    for k, (mem, ops, _) in enumerate(entries):
                        opts.append(
                            (s_edge, vis, mem, ops * mult, ((s, vis), k, red))
                        )
            per_child.append(opts)

        parent_cands = _subsets(
            sorted(set(node.array.indices) & node.loop_indices)
        )
        base_ops = stmt_ops(node)

        # sequential DP over children: the state is the canonical chain
        # of fused/visible sets committed so far (it must stay a total
        # inclusion chain); per state keep the (mem, ops) pareto list.
        states: Dict[Chain, List[Tuple[int, int, Tuple]]] = {
            (): [(0, 0, ())]
        }
        for opts in per_child:
            new_states: Dict[Chain, List[Tuple[int, int, Tuple]]] = {}
            for chain, entries in states.items():
                for s_edge, vis, cmem, cops, backref in opts:
                    cand = [s for s in (s_edge, *vis) if s]
                    merged = _chain_key(list(chain) + cand)
                    if not _is_chain(merged):
                        continue
                    bucket = new_states.setdefault(merged, [])
                    for mem, ops, picks in entries:
                        if tracker is not None:
                            tracker.tick(1, stage="spacetime")
                        if (
                            memory_limit is not None
                            and mem + cmem > memory_limit
                        ):
                            continue
                        pareto_insert(
                            bucket,
                            (mem + cmem, ops + cops, picks + (backref,)),
                        )
            states = new_states

        table: Dict[Tuple[SetKey, Chain], List[Tuple]] = {}
        for s_p in parent_cands:
            own = reduced_size(node.array.indices, tuple(s_p), bindings)
            for chain, entries in states.items():
                family = _chain_key(list(chain) + ([s_p] if s_p else []))
                if not _is_chain(family):
                    continue
                visible_up = _chain_key([x for x in chain if x < s_p])
                key = (s_p, visible_up)
                bucket = table.setdefault(key, [])
                for mem, ops, picks in entries:
                    pareto_insert(bucket, (mem + own, ops + base_ops, picks))
        tables[id(node)] = table
        return table

    root_table = solve(root)
    root_size = total_extent(root.array.indices, bindings)

    # collect root entries (S must be empty), reconstruct each pareto point
    solutions: List[TradeoffSolution] = []
    families: Dict[int, Dict[int, Tuple[SetKey, ...]]] = {}

    def reconstruct(
        node: CompNode,
        key: Tuple[SetKey, Chain],
        entry_idx: int,
        edges: Dict[int, EdgeChoice],
        fams: Dict[int, Tuple[SetKey, ...]],
    ) -> None:
        if node.is_leaf:
            return
        _, _, choice = tables[id(node)][key][entry_idx]
        fam_sets: List[SetKey] = [key[0]]
        for child, (ckey, cidx, red) in zip(node.children, choice):
            edges[id(child)] = EdgeChoice(ckey[0], red)
            fam_sets.append(ckey[0] | red)
            fam_sets.extend(ckey[1])
            reconstruct(child, ckey, cidx, edges, fams)
        fams[id(node)] = _chain_key([s for s in fam_sets if s])

    for (s, vis), entries in root_table.items():
        if s:
            continue
        for idx, (mem, ops, _) in enumerate(entries):
            total_mem = mem - root_size  # exclude the output array
            if memory_limit is not None and total_mem > memory_limit:
                continue
            edges: Dict[int, EdgeChoice] = {}
            fams: Dict[int, Tuple[SetKey, ...]] = {}
            reconstruct(root, (s, vis), idx, edges, fams)
            sol = TradeoffSolution(
                root, total_mem, ops, edges, bindings
            )
            sol._families = fams
            solutions.append(sol)

    # global pareto across keys, then sort by memory
    solutions.sort(key=lambda s: (s.memory, s.ops))
    frontier: List[TradeoffSolution] = []
    best_ops: Optional[int] = None
    for sol in solutions:
        if best_ops is None or sol.ops < best_ops:
            frontier.append(sol)
            best_ops = sol.ops
    return frontier
