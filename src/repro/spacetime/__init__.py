"""Space-time trade-off optimization (paper Section 5, second half).

When pure loop fusion cannot bring temporary storage under the capacity
limit, parts of the computation must be *recomputed*:

* :mod:`repro.spacetime.tradeoff` -- the first step of the paper's
  algorithm: a fusion DP extended with redundant-computation loops,
  maintaining pareto-optimal (memory, recomputation-cost) configuration
  sets per node and pruning solutions over the memory limit;
* :mod:`repro.spacetime.tiling` -- the second step: split recomputation
  indices into tile/intra-tile loop pairs and search tile sizes that
  minimize recomputation cost within the memory limit.
"""

from repro.spacetime.tradeoff import (
    EdgeChoice,
    TradeoffSolution,
    tradeoff_search,
)
from repro.spacetime.tiling import (
    tiled_structure,
    search_tile_sizes,
    refine_tile_sizes,
    TileSearchResult,
)

__all__ = [
    "EdgeChoice",
    "TradeoffSolution",
    "tradeoff_search",
    "tiled_structure",
    "search_tile_sizes",
    "refine_tile_sizes",
    "TileSearchResult",
]
