"""Graph and dynamic-programming workloads as tensor programs.

The semiring layer (:mod:`repro.semiring`) turns the synthesis pipeline
into a graph engine: the same contraction programs that compute
``C[i,j] = sum(k) A[i,k] * B[k,j]`` compute single-source shortest
paths, all-pairs shortest paths, and transitive closure once the scalar
algebra is swapped.  This module provides

* **program builders** emitting the high-level notation
  (:mod:`repro.expr.parser`) for three classic problems:

  - :func:`sssp_program` -- Bellman-Ford relaxation
    ``D_t(j) = sum(i) D_{t-1}(i) * W(i, j)`` over ``min_plus``;
  - :func:`apsp_program` -- all-pairs shortest paths by repeated
    squaring ``S_{2t}(i,j) = sum(k) S_t(i,k) * S_t(k,j)`` over
    ``min_plus`` (``ceil(log2(n-1))`` statements);
  - :func:`closure_program` -- transitive closure by the same squaring
    over ``or_and``;

* **deterministic input generators** (:func:`random_weight_matrix`,
  :func:`random_adjacency`) whose absent edges carry the semiring's
  annihilator (``inf`` for ``min_plus``) and whose diagonal carries the
  identity (``0.0`` -- a zero-length path), making every matrix power
  monotone in path length;

* **brute-force oracles** (:func:`bellman_ford`, :func:`floyd_warshall`,
  :func:`reachability`) written as plain Python loops -- no scipy, no
  networkx -- so validation never depends on the machinery under test.

``min_plus`` results are **bit-identical** across executors, not merely
close: the only operations are float addition and ``min`` of previously
constructed values, both exact in IEEE double for any evaluation order
that the executors legally reassociate into.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "apsp_program",
    "bellman_ford",
    "closure_program",
    "floyd_warshall",
    "random_adjacency",
    "random_weight_matrix",
    "reachability",
    "squaring_steps",
    "sssp_program",
]


def squaring_steps(n: int) -> int:
    """Squarings needed to cover all simple paths of ``n`` nodes.

    After ``m`` squarings of a reflexive weight matrix, entry ``(i, j)``
    is the shortest walk of at most ``2**m`` edges; simple shortest
    paths have at most ``n - 1`` edges.
    """
    steps = 0
    reach = 1
    while reach < max(n - 1, 1):
        reach *= 2
        steps += 1
    return max(steps, 1)


def random_weight_matrix(
    n: int, density: float = 0.4, seed: int = 0
) -> np.ndarray:
    """Random directed weight matrix for ``min_plus`` programs.

    Present edges get weights in ``[1, 10)``; absent edges are ``inf``
    (the ``min_plus`` annihilator); the diagonal is ``0.0`` (the
    identity -- a zero-length path).  Deterministic in ``seed``.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    weights = 1.0 + 9.0 * rng.random((n, n))
    present = rng.random((n, n)) < density
    out = np.where(present, weights, np.inf)
    np.fill_diagonal(out, 0.0)
    return out


def random_adjacency(
    n: int, density: float = 0.3, seed: int = 0
) -> np.ndarray:
    """Random reflexive 0/1 adjacency matrix for ``or_and`` programs."""
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
    rng = np.random.default_rng(seed)
    out = (rng.random((n, n)) < density).astype(np.float64)
    np.fill_diagonal(out, 1.0)
    return out


def sssp_program(n: int, relaxations: int | None = None) -> Tuple[str, str]:
    """Bellman-Ford as a tensor program; returns ``(source, result)``.

    ``D0`` is the source-distance vector (``0`` at the source, ``inf``
    elsewhere); each statement relaxes every edge once.  ``n - 1``
    relaxations (the default) reach every shortest path.
    """
    relaxations = max(n - 1, 1) if relaxations is None else relaxations
    if relaxations < 1:
        raise ValueError(f"need at least one relaxation, got {relaxations}")
    lines: List[str] = [
        f"range N = {n};",
        "index i, j : N;",
        "tensor W(i, j);",
        "tensor D0(i);",
    ]
    for t in range(1, relaxations + 1):
        lines.append(f"D{t}(j) = sum(i) D{t - 1}(i) * W(i, j);")
    return "\n".join(lines) + "\n", f"D{relaxations}"


def apsp_program(n: int) -> Tuple[str, str]:
    """All-pairs shortest paths by repeated squaring; ``(source, result)``.

    ``ceil(log2(n - 1))`` matrix squarings of the reflexive weight
    matrix over ``min_plus``; the final statement's result (``D``)
    holds the full shortest-path distance matrix.
    """
    steps = squaring_steps(n)
    lines: List[str] = [
        f"range N = {n};",
        "index i, j, k : N;",
        "tensor W(i, j);",
    ]
    prev = "W"
    for t in range(1, steps + 1):
        cur = "D" if t == steps else f"S{t}"
        lines.append(f"{cur}(i, j) = sum(k) {prev}(i, k) * {prev}(k, j);")
        prev = cur
    return "\n".join(lines) + "\n", "D"


def closure_program(n: int) -> Tuple[str, str]:
    """Transitive closure by repeated squaring over ``or_and``.

    Same statement shape as :func:`apsp_program` on a reflexive 0/1
    adjacency matrix ``A``; the result ``C`` is 1 where a directed path
    exists.
    """
    steps = squaring_steps(n)
    lines: List[str] = [
        f"range N = {n};",
        "index i, j, k : N;",
        "tensor A(i, j);",
    ]
    prev = "A"
    for t in range(1, steps + 1):
        cur = "C" if t == steps else f"R{t}"
        lines.append(f"{cur}(i, j) = sum(k) {prev}(i, k) * {prev}(k, j);")
        prev = cur
    return "\n".join(lines) + "\n", "C"


# -- oracles (plain Python; deliberately independent of the pipeline) ----


def bellman_ford(weights: np.ndarray, source: int = 0) -> np.ndarray:
    """Single-source shortest distances by edge relaxation.

    Pure-Python nested loops over a dense weight matrix (``inf`` =
    absent edge); the reference implementation the E25 benchmark times
    the native ``min_plus`` backend against.
    """
    n = len(weights)
    dist = [float("inf")] * n
    dist[source] = 0.0
    w = [[float(weights[i][j]) for j in range(n)] for i in range(n)]
    for _ in range(max(n - 1, 1)):
        changed = False
        for i in range(n):
            di = dist[i]
            if di == float("inf"):
                continue
            row = w[i]
            for j in range(n):
                cand = di + row[j]
                if cand < dist[j]:
                    dist[j] = cand
                    changed = True
        if not changed:
            break
    return np.array(dist)


def floyd_warshall(weights: np.ndarray) -> np.ndarray:
    """All-pairs shortest distances, pure-Python triple loop."""
    n = len(weights)
    dist = [[float(weights[i][j]) for j in range(n)] for i in range(n)]
    for i in range(n):
        dist[i][i] = min(dist[i][i], 0.0)
    for k in range(n):
        rk = dist[k]
        for i in range(n):
            dik = dist[i][k]
            if dik == float("inf"):
                continue
            ri = dist[i]
            for j in range(n):
                cand = dik + rk[j]
                if cand < ri[j]:
                    ri[j] = cand
    return np.array(dist)


def reachability(adjacency: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure (0/1), pure-Python worklist."""
    n = len(adjacency)
    reach: List[set] = [
        {j for j in range(n) if adjacency[i][j] != 0.0} | {i}
        for i in range(n)
    ]
    changed = True
    while changed:
        changed = False
        for i in range(n):
            new = set()
            for j in reach[i]:
                new |= reach[j]
            if not new <= reach[i]:
                reach[i] |= new
                changed = True
    out = np.zeros((n, n))
    for i in range(n):
        for j in reach[i]:
            out[i][j] = 1.0
    return out


def sssp_inputs(
    weights: np.ndarray, source: int = 0
) -> Dict[str, np.ndarray]:
    """Input environment for :func:`sssp_program` on ``weights``."""
    n = len(weights)
    d0 = np.full(n, np.inf)
    d0[source] = 0.0
    return {"W": np.asarray(weights, dtype=np.float64), "D0": d0}
