"""repro -- reproduction of the IPPS 2002 Tensor Contraction Engine
performance-optimization framework (Baumgartner, Cociorva, Lam,
Ramanujam: "A Performance Optimization Framework for Compilation of
Tensor Contraction Expressions into Parallel Programs").

Quickstart::

    from repro import synthesize, SynthesisConfig

    result = synthesize('''
        range V = 10;  range O = 4;
        index a, b, c, d, e, f : V;
        index i, j, k, l : O;
        tensor A(a, c, i, k); tensor B(b, e, f, l);
        tensor C(d, f, j, k); tensor D(c, d, e, l);
        S(a, b, i, j) = sum(c, d, e, f, k, l)
            A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
    ''')
    print(result.describe())
    print(result.render_structure())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.pipeline import SynthesisConfig, SynthesisResult, synthesize
from repro.engine.machine import MachineModel, MemoryLevel
from repro.parallel.grid import ProcessorGrid
from repro.parallel.commcost import CommModel

__version__ = "1.4.0"

__all__ = [
    "synthesize",
    "SynthesisConfig",
    "SynthesisResult",
    "MachineModel",
    "MemoryLevel",
    "ProcessorGrid",
    "CommModel",
    "__version__",
]

# secondary public surface (stable import points for library users)
from repro.autotune import AutotuneOptions, TuningDB
from repro.runtime.plan_cache import PlanCache
from repro.kernels import BufferArena, KernelPlan, KernelRunner, compile_kernel_plan
from repro.engine.executor import evaluate_expression, random_inputs, run_statements
from repro.engine.counters import Counters
from repro.expr.parser import parse_program
from repro.expr.printer import program_to_source
from repro.opmin.multi_term import optimize_program, optimize_statement
from repro.opmin.schedule import schedule_statements
from repro.semiring import (
    Semiring,
    available_semirings,
    get_semiring,
    semiring_einsum,
)
from repro.validate import verify_result

__all__ += [
    "Semiring",
    "available_semirings",
    "get_semiring",
    "semiring_einsum",
    "AutotuneOptions",
    "TuningDB",
    "PlanCache",
    "BufferArena",
    "KernelPlan",
    "KernelRunner",
    "compile_kernel_plan",
    "evaluate_expression",
    "random_inputs",
    "run_statements",
    "Counters",
    "parse_program",
    "program_to_source",
    "optimize_program",
    "optimize_statement",
    "schedule_statements",
    "verify_result",
]
