"""Memory-minimization dynamic program (paper Section 5).

Bottom-up DP over the computation tree.  The state at a subtree root is
the *ordered* sequence of indices fused with its parent (outermost
first): the fused loops must be the outermost loops of the node, so any
two fusion sequences meeting at a node must be prefixes of one common
loop order -- equivalently, pairwise one must be a prefix of the other.
The ordering is what rules out partially-overlapping fusion chains (see
:mod:`repro.fusion.fusion_graph`).

For every candidate parent-fusion sequence the DP keeps the minimal
total temporary storage achievable in the subtree, merging child
solution tables under the prefix-chain compatibility condition -- the
paper's "pareto-optimal fusion configurations at each node" with
(constraint, memory) as the two metrics: here the constraint *is* the
key of the solution table, and only memory is minimized per key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.indices import Bindings, Index, total_extent
from repro.fusion.tree import CompNode
from repro.robustness.budget import as_tracker
from repro.robustness.errors import BudgetExceeded

#: An ordered fusion sequence (outermost fused loop first).
Seq = Tuple[Index, ...]


def _is_prefix(short: Seq, long: Seq) -> bool:
    return len(short) <= len(long) and long[: len(short)] == short


def prefix_chain_compatible(seqs: Sequence[Seq]) -> bool:
    """True if the sequences can all be prefixes of one loop order."""
    ordered = sorted(seqs, key=len)
    for a, b in zip(ordered, ordered[1:]):
        if not _is_prefix(a, b):
            return False
    return True


def ordered_subsets(indices: FrozenSet[Index], cap: int = 50000) -> List[Seq]:
    """All ordered subsets (permutations of subsets) of an index set."""
    items = sorted(indices)
    out: List[Seq] = [()]
    for r in range(1, len(items) + 1):
        for combo in itertools.permutations(items, r):
            out.append(combo)
            if len(out) > cap:
                raise ValueError(
                    f"fusion search space too large ({len(items)} candidate "
                    "indices on one edge)"
                )
    return out


def reduced_size(
    array_indices: Sequence[Index],
    fused: Seq,
    bindings: Optional[Bindings] = None,
) -> int:
    """Array size after eliminating fused dimensions."""
    drop = set(fused)
    return total_extent([i for i in array_indices if i not in drop], bindings)


@dataclass
class FusionDecision:
    """Chosen fusion for one tree node: the sequence on the parent edge
    and, per child, the sequence on that child edge."""

    node: CompNode
    parent_fusion: Seq
    child_fusions: Tuple[Seq, ...]
    loop_order: Tuple[Index, ...] = ()


@dataclass
class FusionResult:
    """Outcome of the DP for one tree."""

    root: CompNode
    total_memory: int
    decisions: Dict[int, FusionDecision]  # keyed by id(node)
    bindings: Optional[Bindings] = None

    def fusion_of(self, node: CompNode) -> Seq:
        return self.decisions[id(node)].parent_fusion

    def array_dims(self, node: CompNode) -> Tuple[Index, ...]:
        """Remaining dimensions of the node's array after fusion."""
        fused = set(self.fusion_of(node))
        return tuple(i for i in node.array.indices if i not in fused)

    def memory_by_array(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for node_key, dec in self.decisions.items():
            node = dec.node
            if node.is_leaf:
                continue
            out[node.array.name] = reduced_size(
                node.array.indices, dec.parent_fusion, self.bindings
            )
        return out


def minimize_memory(
    root: CompNode,
    bindings: Optional[Bindings] = None,
    include_output: bool = False,
    budget=None,
) -> FusionResult:
    """Run the fusion DP; returns the minimal-total-memory configuration.

    ``include_output=False`` (default) excludes the root's result array
    from the objective -- it must be stored anyway; the paper's metric
    is temporary storage.

    ``budget`` bounds the DP (each candidate fusion state ticks); on
    exhaustion the stage degrades to the no-fusion baseline -- every
    temporary at full size, still a correct loop structure.
    """
    tracker = as_tracker(budget)
    try:
        return _minimize_memory_dp(root, bindings, include_output, tracker)
    except BudgetExceeded as exc:
        if tracker is not None:
            tracker.degrade("fusion", exc, "no-fusion baseline")
        return unfused_result(root, bindings, include_output)
    except ValueError as exc:
        # the ordered-subsets cap is a search-space blowup: under a
        # budget it degrades like exhaustion; without one it still fails
        if tracker is None:
            raise
        tracker.degrade(
            "fusion",
            BudgetExceeded(str(exc), stage="fusion"),
            "no-fusion baseline",
        )
        return unfused_result(root, bindings, include_output)


def unfused_result(
    root: CompNode,
    bindings: Optional[Bindings] = None,
    include_output: bool = False,
) -> FusionResult:
    """The no-fusion baseline: empty fusion sequences everywhere, every
    non-leaf temporary stored at its full declared size."""
    decisions: Dict[int, FusionDecision] = {}
    memory = 0
    for node in root.subtree():
        if node.is_leaf:
            decisions[id(node)] = FusionDecision(node, (), ())
            continue
        decisions[id(node)] = FusionDecision(
            node,
            (),
            tuple(() for _ in node.children),
            loop_order=tuple(sorted(node.loop_indices)),
        )
        if node is not root or include_output:
            memory += node.array_size(bindings)
    return FusionResult(root, memory, decisions, bindings)


def _minimize_memory_dp(
    root: CompNode,
    bindings: Optional[Bindings],
    include_output: bool,
    tracker,
) -> FusionResult:
    # solution tables: per node, {parent_seq: (memory, child_seq_choices)}
    tables: Dict[int, Dict[Seq, Tuple[int, Tuple[Seq, ...]]]] = {}

    def solve(node: CompNode) -> Dict[Seq, Tuple[int, Tuple[Seq, ...]]]:
        cached = tables.get(id(node))
        if cached is not None:
            return cached
        if node.is_leaf:
            # leaves hold no temporary storage and fuse with nothing
            table = {(): (0, ())}
            tables[id(node)] = table
            return table

        child_tables: List[Dict[Seq, Tuple[int, Tuple[Seq, ...]]]] = []
        child_options: List[List[Seq]] = []
        for child, ok in zip(node.children, node.fusible):
            tab = solve(child)
            child_tables.append(tab)
            if not ok or child.is_leaf:
                child_options.append([()])
                continue
            common = node.common_indices(child) & set(
                child.array.indices
            )
            opts = [
                seq
                for seq in ordered_subsets(frozenset(common))
                if seq in tab
            ]
            child_options.append(opts or [()])

        # candidate parent sequences: ordered subsets of the node's
        # array dimensions that are also loops of the node
        parent_cands = ordered_subsets(
            frozenset(set(node.array.indices) & node.loop_indices)
        )

        # sequential DP over children instead of a cartesian product:
        # any family of sequences meeting at a node must be pairwise
        # prefix-comparable, i.e. all prefixes of the longest one --
        # so "the longest sequence so far" is a sufficient state.
        states: Dict[Seq, Tuple[int, Tuple[Seq, ...]]] = {(): (0, ())}
        for k, opts in enumerate(child_options):
            new_states: Dict[Seq, Tuple[int, Tuple[Seq, ...]]] = {}
            for longest, (mem, picks) in states.items():
                for seq in opts:
                    if tracker is not None:
                        tracker.tick(1, stage="fusion")
                    if _is_prefix(seq, longest):
                        new_longest = longest
                    elif _is_prefix(longest, seq):
                        new_longest = seq
                    else:
                        continue
                    total = mem + child_tables[k][seq][0]
                    cur = new_states.get(new_longest)
                    if cur is None or total < cur[0]:
                        new_states[new_longest] = (total, picks + (seq,))
            states = new_states

        table: Dict[Seq, Tuple[int, Tuple[Seq, ...]]] = {}
        for pseq in parent_cands:
            own = reduced_size(node.array.indices, pseq, bindings)
            for longest, (mem, picks) in states.items():
                if tracker is not None:
                    tracker.tick(1, stage="fusion")
                if not (
                    _is_prefix(pseq, longest) or _is_prefix(longest, pseq)
                ):
                    continue
                total = mem + own
                cur = table.get(pseq)
                if cur is None or total < cur[0]:
                    table[pseq] = (total, picks)
        tables[id(node)] = table
        return table

    root_table = solve(root)
    best_mem, best_children = root_table[()]
    if not include_output:
        best_mem -= total_extent(root.array.indices, bindings)

    # reconstruct decisions top-down
    decisions: Dict[int, FusionDecision] = {}

    def reconstruct(node: CompNode, pseq: Seq) -> None:
        if node.is_leaf:
            decisions[id(node)] = FusionDecision(node, pseq, ())
            return
        _, child_seqs = tables[id(node)][pseq]
        chain = sorted([pseq, *child_seqs], key=len)
        longest = chain[-1] if chain else ()
        rest = tuple(
            sorted(i for i in node.loop_indices if i not in set(longest))
        )
        decisions[id(node)] = FusionDecision(
            node, pseq, child_seqs, loop_order=longest + rest
        )
        for child, cseq in zip(node.children, child_seqs):
            reconstruct(child, cseq)

    reconstruct(root, ())
    return FusionResult(root, best_mem, decisions, bindings)
