"""Brute-force fusion enumeration (ground truth for the DP).

Enumerates every per-edge *set* assignment of fused indices, checks
feasibility with the fusion-graph scope condition (chains pairwise
disjoint or nested), and returns the minimal total temporary storage.
Exponential -- use on small trees only.  The DP's ordered-prefix
formulation must agree with this scope-condition ground truth; the test
suite compares both on random trees.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.expr.indices import Bindings, Index, total_extent
from repro.fusion.fusion_graph import FusionGraph
from repro.fusion.memopt import reduced_size
from repro.fusion.tree import CompNode


def brute_force_min_memory(
    root: CompNode,
    bindings: Optional[Bindings] = None,
    include_output: bool = False,
    cap: int = 2_000_000,
) -> Tuple[int, Dict[Tuple[int, int], FrozenSet[Index]]]:
    """Minimal total temporary memory over all feasible fusions.

    Returns ``(memory, best_assignment)`` where the assignment maps
    (parent_id, child_id) edges to fused index sets.
    """
    graph = FusionGraph(root)

    # enumerable edges: fusible, child non-leaf; candidate sets are
    # subsets of (common loops intersect child's array dims)
    edges: List[Tuple[int, int]] = []
    choices: List[List[FrozenSet[Index]]] = []
    for p, c in graph.edges():
        if not graph.is_fusible_edge(p, c):
            continue
        child = graph.node(c)
        if child.is_leaf:
            continue
        parent = graph.node(p)
        common = (
            parent.loop_indices
            & child.loop_indices
            & set(child.array.indices)
        )
        subsets: List[FrozenSet[Index]] = [frozenset()]
        items = sorted(common)
        for r in range(1, len(items) + 1):
            subsets.extend(
                frozenset(combo) for combo in itertools.combinations(items, r)
            )
        edges.append((p, c))
        choices.append(subsets)

    total = 1
    for ch in choices:
        total *= len(ch)
    if total > cap:
        raise ValueError(f"brute-force space too large ({total} assignments)")

    # memory contribution of each enumerable edge's child array, plus the
    # fixed storage of arrays whose parent edge is not enumerable
    fixed = 0
    enumerable_children = {c for _, c in edges}
    for nid in range(graph.n_nodes()):
        node = graph.node(nid)
        if node.is_leaf:
            continue
        if nid == graph.node_id(root):
            if include_output:
                fixed += total_extent(node.array.indices, bindings)
            continue
        if nid not in enumerable_children:
            fixed += total_extent(node.array.indices, bindings)

    best_mem: Optional[int] = None
    best_assign: Dict[Tuple[int, int], FrozenSet[Index]] = {}
    for combo in itertools.product(*choices):
        assignment = dict(zip(edges, combo))
        if not graph.feasible(assignment):
            continue
        mem = fixed
        for (p, c), fused in assignment.items():
            child = graph.node(c)
            mem += reduced_size(child.array.indices, tuple(fused), bindings)
        if best_mem is None or mem < best_mem:
            best_mem = mem
            best_assign = assignment
    assert best_mem is not None  # empty assignment is always feasible
    return best_mem, best_assign
