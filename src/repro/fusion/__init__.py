"""Memory minimization by loop fusion (paper Section 5).

Given a formula sequence (one loop nest per binary contraction), decide
which loops to fuse between producer-consumer pairs so that intermediate
arrays lose the fused dimensions and total temporary storage is minimal,
*without changing the operation count*.

Modules:

* :mod:`repro.fusion.tree` -- computation trees over formula sequences;
* :mod:`repro.fusion.fusion_graph` -- the paper's fusion-graph data
  structure (Figs. 6-7): potential-fusion edges, fusion chains, and the
  "scopes disjoint or nested" feasibility condition;
* :mod:`repro.fusion.memopt` -- bottom-up dynamic programming over
  fusion configurations (prefix-chain formulation);
* :mod:`repro.fusion.brute` -- brute-force enumeration used to validate
  the DP on small trees.
"""

from repro.fusion.tree import CompNode, build_tree
from repro.fusion.fusion_graph import FusionGraph, FusionChain
from repro.fusion.memopt import FusionDecision, FusionResult, minimize_memory
from repro.fusion.brute import brute_force_min_memory

__all__ = [
    "CompNode",
    "build_tree",
    "FusionGraph",
    "FusionChain",
    "FusionDecision",
    "FusionResult",
    "minimize_memory",
    "brute_force_min_memory",
]
