"""Computation trees over formula sequences.

A formula sequence (the output of operation minimization) is a list of
statements, each evaluated by one perfectly-nested loop nest.  The
*computation tree* makes the producer-consumer structure explicit: the
node for a statement has one child per distinct temporary (or input, or
function evaluation) its right-hand side references.

Fusion reasoning requires a tree: each intermediate must have exactly
one consumer.  Sequences with multi-consumer temporaries (created by
CSE) are still accepted -- the extra consumer edges are simply marked
non-fusible, which is conservative and preserves correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.expr.ast import Statement, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, Index, total_extent
from repro.expr.tensor import Tensor


@dataclass
class CompNode:
    """One node of the computation tree.

    Attributes
    ----------
    stmt:
        The producing statement, or ``None`` for leaves (program inputs
        and primitive function evaluations).
    array:
        The tensor produced (or the input/function tensor itself).
    loop_indices:
        Indices of the node's loop nest: the statement's free indices
        plus its summation indices.  Empty for leaves.
    children:
        Producer nodes of referenced temporaries/inputs, in reference
        order.
    fusible:
        Per-child flag: ``False`` when the child's array has other
        consumers (fusion of that edge is disallowed).
    """

    stmt: Optional[Statement]
    array: Tensor
    loop_indices: FrozenSet[Index]
    children: List["CompNode"] = field(default_factory=list)
    fusible: List[bool] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.stmt is None

    @property
    def is_input_leaf(self) -> bool:
        return self.stmt is None and not self.array.is_function

    @property
    def array_indices(self) -> Tuple[Index, ...]:
        return self.array.indices

    def array_size(self, bindings: Optional[Bindings] = None) -> int:
        return total_extent(self.array.indices, bindings)

    def common_indices(self, child: "CompNode") -> FrozenSet[Index]:
        """Indices fusible along the edge to ``child``: loops both nests
        share.  Leaves have no loops, hence nothing to fuse."""
        return self.loop_indices & child.loop_indices

    def subtree(self) -> List["CompNode"]:
        out = [self]
        for child in self.children:
            out.extend(child.subtree())
        return out

    def internal_nodes(self) -> List["CompNode"]:
        return [n for n in self.subtree() if not n.is_leaf]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kids = ",".join(c.array.name for c in self.children)
        return f"CompNode({self.array.name}; loops={{{','.join(sorted(i.name for i in self.loop_indices))}}}; children=[{kids}])"


def _statement_loops(stmt: Statement) -> FrozenSet[Index]:
    """Loop indices of the direct loop nest for a statement."""
    terms = flatten(stmt.expr)
    loops: Set[Index] = set(stmt.expr.free)
    for _, sums, _ in terms:
        loops |= sums
    return frozenset(loops)


def build_forest(statements: Sequence[Statement]) -> List[CompNode]:
    """Build the computation forest of a formula sequence.

    Temporaries consumed by exactly one later statement hang below their
    consumer (a fusible edge).  Temporaries with several consumers (CSE
    products) become roots of their own trees and appear as unfusible
    leaf references in each consumer -- a conservative treatment that
    keeps each tree a genuine tree for the fusion DP while counting the
    shared array's storage exactly once.

    The final statement's tree is last in the returned list.
    """
    if not statements:
        raise ValueError("empty formula sequence")

    producers: Dict[str, Statement] = {}
    order: List[str] = []
    for stmt in statements:
        if stmt.result.name in producers:
            raise ValueError(
                f"array {stmt.result.name!r} produced twice; fusion operates "
                "on single-assignment formula sequences"
            )
        producers[stmt.result.name] = stmt
        order.append(stmt.result.name)

    # a temporary is shared when *distinct statements* consume it, or
    # when one statement references it under different index tuples
    # (positional dimension elimination would be ambiguous then); two
    # identical references within one statement are one consumer nest
    consumer_counts: Dict[str, int] = {}
    renamed: Set[str] = set()
    for stmt in statements:
        tuples_here: Dict[str, set] = {}
        for ref in stmt.expr.refs():
            name = ref.tensor.name
            if name in producers and producers[name] is not stmt:
                tuples_here.setdefault(name, set()).add(tuple(ref.indices))
                # a reference under indices other than the producer's
                # declared output indices (e.g. D(j) consumed as D(i)
                # inside a contraction) is a *transposed/renamed* use:
                # the producer's loops are not the consumer's loops
                # even when the Index objects coincide, so fusing the
                # edge would misalign the nests.  Materialize instead.
                if tuple(ref.indices) != tuple(
                    producers[name].result.indices
                ):
                    renamed.add(name)
        for name, tuples in tuples_here.items():
            consumer_counts[name] = consumer_counts.get(name, 0) + len(tuples)

    shared = {name for name, count in consumer_counts.items() if count > 1}
    shared |= renamed

    def node_for(stmt: Statement) -> CompNode:
        name = stmt.result.name
        node = CompNode(stmt, stmt.result, _statement_loops(stmt))
        seen_children: Set[str] = set()
        for ref in stmt.expr.refs():
            cname = ref.tensor.name
            if cname == name or cname in seen_children:
                continue
            seen_children.add(cname)
            if cname in producers and cname not in shared:
                node.children.append(node_for(producers[cname]))
                node.fusible.append(True)
            else:
                # input array, function evaluation, or shared temporary:
                # an unfusible leaf
                node.children.append(CompNode(None, ref.tensor, frozenset()))
                node.fusible.append(False)
        return node

    roots = [node_for(producers[name]) for name in order if name in shared]
    roots.append(node_for(statements[-1]))

    # every statement must appear in exactly one tree
    produced = set()
    for root in roots:
        for n in root.subtree():
            if n.stmt is not None:
                produced.add(n.stmt.result.name)
    missing = set(order) - produced
    if missing:
        names = ", ".join(sorted(missing))
        raise ValueError(
            f"statements producing {names} are not consumed by the final "
            "result (dead code)"
        )
    return roots


def build_tree(statements: Sequence[Statement]) -> CompNode:
    """Build the computation tree of a formula sequence that has no
    multi-consumer temporaries (the common case).  The last statement is
    the root."""
    forest = build_forest(statements)
    if len(forest) != 1:
        raise ValueError(
            "sequence has shared temporaries; use build_forest instead"
        )
    return forest[0]
