"""The paper's fusion-graph data structure (Section 5, Figs. 6-7).

For each node of a computation tree the fusion graph has one vertex per
loop index of that node's loop nest.  A *potential fusion edge* (dashed
in the paper) connects equal indices of a producer-consumer pair.  A
fusion configuration turns some potential edges into *fusion edges*;
edges for one index connected through shared nodes form a *fusion
chain*, whose *scope* is the set of tree nodes it spans.

Feasibility (the paper's characterization): **the scopes of any two
fusion chains must be disjoint or related by inclusion** -- loops are
either separate or nested, never partially overlapping.

Redundant-computation vertices (Fig. 7(a)) may be added to a node to
enable fusions that its natural loop set does not allow; the space-time
module uses this to trade recomputation for memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.expr.indices import Index
from repro.fusion.tree import CompNode

#: A fusion assignment: for each (parent, child) edge, the set of fused
#: indices.  Edges are identified by node ids (see FusionGraph.node_id).
EdgeFusion = Mapping[Tuple[int, int], FrozenSet[Index]]


@dataclass(frozen=True)
class FusionChain:
    """A maximal connected run of fusion edges for one index."""

    index: Index
    scope: FrozenSet[int]  # node ids spanned

    def overlaps_partially(self, other: "FusionChain") -> bool:
        inter = self.scope & other.scope
        if not inter:
            return False
        return not (
            self.scope <= other.scope or other.scope <= self.scope
        )


class FusionGraph:
    """Fusion graph over a computation tree.

    Node ids are assigned in pre-order over the tree.  The vertex set of
    each node starts as its loop-index set and can be extended with
    redundant indices.
    """

    def __init__(self, root: CompNode) -> None:
        self.root = root
        self._nodes: List[CompNode] = []
        self._ids: Dict[int, int] = {}
        self._parent: Dict[int, Optional[int]] = {}
        self._fusible: Dict[Tuple[int, int], bool] = {}
        self.vertices: Dict[int, Set[Index]] = {}

        def visit(node: CompNode, parent_id: Optional[int]) -> None:
            nid = len(self._nodes)
            self._nodes.append(node)
            self._ids[id(node)] = nid
            self._parent[nid] = parent_id
            self.vertices[nid] = set(node.loop_indices)
            for child, ok in zip(node.children, node.fusible):
                cid = len(self._nodes)
                visit(child, nid)
                self._fusible[(nid, cid)] = ok

        visit(root, None)

    # -- structure ----------------------------------------------------------

    def node_id(self, node: CompNode) -> int:
        return self._ids[id(node)]

    def node(self, nid: int) -> CompNode:
        return self._nodes[nid]

    def n_nodes(self) -> int:
        return len(self._nodes)

    def edges(self) -> List[Tuple[int, int]]:
        """(parent_id, child_id) pairs, fusible or not."""
        return sorted(self._fusible)

    def is_fusible_edge(self, parent: int, child: int) -> bool:
        return self._fusible.get((parent, child), False)

    def add_redundant_indices(self, nid: int, indices: Iterable[Index]) -> None:
        """Add redundant-loop vertices to a node (Fig. 7(a)): the node's
        loop nest gains loops over these indices, enabling their fusion
        at the price of recomputation."""
        node = self._nodes[nid]
        if node.is_leaf:
            raise ValueError("cannot add redundant loops to a leaf")
        self.vertices[nid].update(indices)

    # -- potential edges ----------------------------------------------------

    def potential_edges(self) -> Dict[Tuple[int, int], FrozenSet[Index]]:
        """Per tree edge, the indices whose vertices could be fused."""
        out: Dict[Tuple[int, int], FrozenSet[Index]] = {}
        for (p, c), ok in self._fusible.items():
            if not ok:
                continue
            common = frozenset(self.vertices[p] & self.vertices[c])
            if common:
                out[(p, c)] = common
        return out

    # -- chains and feasibility ----------------------------------------------

    def chains(self, fusion: EdgeFusion) -> List[FusionChain]:
        """Maximal fusion chains induced by an edge-fusion assignment."""
        # collect, per index, the fused tree edges; connected components
        # through shared endpoints form chains
        by_index: Dict[Index, List[Tuple[int, int]]] = {}
        for edge, indices in fusion.items():
            for idx in indices:
                by_index.setdefault(idx, []).append(edge)
        chains: List[FusionChain] = []
        for idx, edges in by_index.items():
            nodes: Set[int] = set()
            adj: Dict[int, Set[int]] = {}
            for p, c in edges:
                nodes.update((p, c))
                adj.setdefault(p, set()).add(c)
                adj.setdefault(c, set()).add(p)
            seen: Set[int] = set()
            for start in sorted(nodes):
                if start in seen:
                    continue
                comp: Set[int] = set()
                stack = [start]
                while stack:
                    cur = stack.pop()
                    if cur in comp:
                        continue
                    comp.add(cur)
                    stack.extend(adj.get(cur, ()))
                seen |= comp
                chains.append(FusionChain(idx, frozenset(comp)))
        return chains

    def validate_assignment(self, fusion: EdgeFusion) -> None:
        """Raise ValueError for structurally invalid assignments (fusing
        a non-fusible edge or an index missing from either endpoint)."""
        for (p, c), indices in fusion.items():
            if not indices:
                continue
            if (p, c) not in self._fusible:
                raise ValueError(f"({p},{c}) is not a tree edge")
            if not self._fusible[(p, c)]:
                raise ValueError(f"edge ({p},{c}) is not fusible")
            bad = set(indices) - (self.vertices[p] & self.vertices[c])
            if bad:
                names = ", ".join(sorted(i.name for i in bad))
                raise ValueError(
                    f"indices {names} not common to both endpoints of "
                    f"({p},{c})"
                )

    def feasible(self, fusion: EdgeFusion) -> bool:
        """The paper's condition: chain scopes pairwise disjoint/nested."""
        self.validate_assignment(fusion)
        chains = self.chains(fusion)
        for a in range(len(chains)):
            for b in range(a + 1, len(chains)):
                if chains[a].overlaps_partially(chains[b]):
                    return False
        return True
