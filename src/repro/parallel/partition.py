"""The Section-7 dynamic-programming algorithm.

Implements the paper's three steps verbatim:

1. leaves: ``Cost(v, alpha) = 0`` for non-replicated ``alpha`` (initial
   placement of inputs is free in any block distribution), otherwise the
   cheapest way to reach ``alpha`` from some non-replicated ``beta``;
2. bottom-up, for every internal node and every target distribution
   ``alpha``:

   * multiplication: both children are brought to a common ``gamma``,
     the products are formed locally, the result optionally
     redistributed to ``alpha``;
   * summation over ``i``: the child may have any ``gamma``; if ``i`` is
     distributed, partial sums are either combined onto one processor
     along that dimension or replicated across it (the two options),
     then redistributed;

3. the root's cheapest ``alpha`` wins and choices are traced back
   through the ``Dist`` tables.

Complexity is ``O(q^2 |T|)`` in the number of internal nodes ``|T|`` and
distribution count ``q``; the implementation counts evaluated states so
benchmarks can verify the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.expr.indices import Bindings
from repro.parallel.commcost import (
    CommModel,
    calc_mul_elements,
    move_cost_elements,
    partial_sum_elements,
    reduction_comm_elements,
    reduction_result_dist,
)
from repro.parallel.dist import (
    SINGLE,
    Distribution,
    enumerate_distributions,
    no_replicate,
)
from repro.parallel.grid import ProcessorGrid
from repro.parallel.ptree import PLeaf, PMul, PNode, PSum
from repro.robustness.budget import as_tracker


@dataclass
class PartitionPlan:
    """Chosen distributions for every node of the tree."""

    root: PNode
    grid: ProcessorGrid
    model: CommModel
    total_cost: float
    dist: Dict[int, Distribution]  # id(node) -> output distribution
    gamma: Dict[int, Distribution]  # id(node) -> compute distribution
    sum_option: Dict[int, str]  # id(PSum) -> 'combine'|'replicate'|'local'
    states_evaluated: int
    bindings: Optional[Bindings] = None

    # The per-node tables are keyed by ``id(node)``, which does not
    # survive serialization: unpickling (or deep-copying) the tree
    # creates fresh objects with fresh ids.  Re-key the tables by the
    # node's position in the deterministic pre-order walk of ``root``
    # while serialized, and rebuild the id keys against the new tree on
    # the way back in.  This is what makes partition plans (and hence
    # whole synthesis results) storable in the on-disk plan cache.

    def __getstate__(self) -> Dict[str, object]:
        pos = {id(n): k for k, n in enumerate(self.root.walk())}
        state = self.__dict__.copy()
        for table in ("dist", "gamma", "sum_option"):
            state[table] = {
                pos[node_id]: value
                for node_id, value in getattr(self, table).items()
                if node_id in pos
            }
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        nodes = list(self.root.walk())
        for table in ("dist", "gamma", "sum_option"):
            setattr(
                self,
                table,
                {id(nodes[k]): v for k, v in state[table].items()},
            )

    def describe(self) -> str:
        lines: List[str] = [f"grid {self.grid}, total cost {self.total_cost:.0f}"]

        def visit(node: PNode, depth: int) -> None:
            pad = "  " * depth
            extra = ""
            if isinstance(node, PSum):
                extra = f" [{self.sum_option[id(node)]}]"
            gamma = self.gamma.get(id(node))
            gtxt = f" via {gamma}" if gamma is not None else ""
            lines.append(
                f"{pad}{_label(node)} -> {self.dist[id(node)]}{gtxt}{extra}"
            )
            for child in node.children():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def _label(node: PNode) -> str:
    if isinstance(node, PLeaf):
        return node.ref.tensor.name
    if isinstance(node, PMul):
        return "mul"
    return f"sum_{node.index.name}"


def optimize_distribution(
    root: PNode,
    grid: ProcessorGrid,
    model: Optional[CommModel] = None,
    bindings: Optional[Bindings] = None,
    result_dist: Optional[Distribution] = None,
    budget=None,
) -> PartitionPlan:
    """Run the Section-7 DP; returns the minimal-cost plan.

    ``result_dist`` pins the root's distribution (e.g. when the caller
    needs the output on one processor); by default the cheapest root
    distribution is chosen.

    ``budget`` bounds the DP (every evaluated state ticks); on
    exhaustion :class:`~repro.robustness.errors.BudgetExceeded`
    propagates and callers degrade to :func:`canonical_plan`.
    """
    model = model or CommModel()
    tracker = as_tracker(budget)
    states = 0

    # Cost and Dist tables: per node, keyed by Distribution
    cost_tab: Dict[int, Dict[Distribution, float]] = {}
    back: Dict[int, Dict[Distribution, Tuple]] = {}

    def move(indices, src: Distribution, dst: Distribution) -> float:
        if src == dst:
            return 0.0
        return model.comm_cost * move_cost_elements(
            indices, src, dst, grid, bindings
        )

    def tick(n: int = 1) -> None:
        nonlocal states
        states += n
        if tracker is not None:
            tracker.tick(n, stage="distribution")

    def solve(node: PNode) -> Dict[Distribution, float]:
        hit = cost_tab.get(id(node))
        if hit is not None:
            return hit
        alphas = enumerate_distributions(node.indices, grid)
        table: Dict[Distribution, float] = {}
        trace: Dict[Distribution, Tuple] = {}

        if isinstance(node, PLeaf):
            plains = [a for a in alphas if no_replicate(a)]
            for alpha in alphas:
                tick()
                if no_replicate(alpha):
                    table[alpha] = 0.0
                    trace[alpha] = ("init", alpha)
                else:
                    best, best_beta = None, None
                    for beta in plains:
                        c = move(node.indices, beta, alpha)
                        if best is None or c < best:
                            best, best_beta = c, beta
                    table[alpha] = best
                    trace[alpha] = ("init", best_beta)

        elif isinstance(node, PMul):
            ltab = solve(node.left)
            rtab = solve(node.right)
            gammas = enumerate_distributions(node.indices, grid)
            # precompute per-gamma formation cost
            formed: List[Tuple[Distribution, float]] = []
            for gamma in gammas:
                lcost = ltab[gamma.effective(node.left.indices)]
                rcost = rtab[gamma.effective(node.right.indices)]
                calc = model.flop_cost * calc_mul_elements(
                    node.indices, gamma, grid, bindings
                )
                formed.append((gamma, lcost + rcost + calc))
            for alpha in alphas:
                best, best_gamma = None, None
                for gamma, fcost in formed:
                    tick()
                    c = fcost + move(node.indices, gamma, alpha)
                    if best is None or c < best:
                        best, best_gamma = c, gamma
                table[alpha] = best
                trace[alpha] = ("mul", best_gamma)

        elif isinstance(node, PSum):
            ctab = solve(node.child)
            child = node.child
            options: List[Tuple[Distribution, float, Distribution, str]] = []
            for gamma, ccost in ctab.items():
                partial = model.flop_cost * partial_sum_elements(
                    child.indices, gamma, grid, bindings
                )
                if gamma.position_of(node.index) is None:
                    out_dist = gamma
                    options.append((gamma, ccost + partial, out_dist, "local"))
                else:
                    red = model.comm_cost * reduction_comm_elements(
                        node.indices,
                        gamma,
                        node.index,
                        grid,
                        bindings,
                        pattern=model.reduction,
                    )
                    for option in ("combine", "replicate"):
                        out_dist = reduction_result_dist(
                            gamma, node.index, replicate=option == "replicate"
                        )
                        options.append(
                            (gamma, ccost + partial + red, out_dist, option)
                        )
            for alpha in alphas:
                best, best_choice = None, None
                for gamma, fcost, out_dist, option in options:
                    tick()
                    c = fcost + move(node.indices, out_dist, alpha)
                    if best is None or c < best:
                        best = c
                        best_choice = (gamma, out_dist, option)
                table[alpha] = best
                trace[alpha] = ("sum",) + best_choice

        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown PNode {type(node).__name__}")

        cost_tab[id(node)] = table
        back[id(node)] = trace
        return table

    root_table = solve(root)
    if result_dist is not None:
        best_alpha, best_cost = result_dist, root_table[result_dist]
    else:
        best_alpha = min(root_table, key=lambda a: root_table[a])
        best_cost = root_table[best_alpha]

    # trace back
    dist: Dict[int, Distribution] = {}
    gamma_map: Dict[int, Distribution] = {}
    sum_option: Dict[int, str] = {}

    def assign(node: PNode, alpha: Distribution) -> None:
        dist[id(node)] = alpha
        choice = back[id(node)][alpha]
        if isinstance(node, PLeaf):
            gamma_map[id(node)] = choice[1]
            return
        if isinstance(node, PMul):
            gamma = choice[1]
            gamma_map[id(node)] = gamma
            assign(node.left, gamma.effective(node.left.indices))
            assign(node.right, gamma.effective(node.right.indices))
            return
        gamma, out_dist, option = choice[1], choice[2], choice[3]
        gamma_map[id(node)] = gamma
        sum_option[id(node)] = option
        assign(node.child, gamma)

    assign(root, best_alpha)
    return PartitionPlan(
        root,
        grid,
        model,
        best_cost,
        dist,
        gamma_map,
        sum_option,
        states,
        bindings,
    )


def canonical_distribution(indices, grid: ProcessorGrid) -> Distribution:
    """The canonical block distribution of an index set: the sorted
    indices fill the grid dimensions in order, surplus dimensions get
    the first-processor marker (never replication)."""
    idxs = sorted(indices)
    entries = tuple(
        idxs[d] if d < len(idxs) else SINGLE
        for d in range(len(grid.dims))
    )
    return Distribution(entries)


def canonical_plan(
    root: PNode,
    grid: ProcessorGrid,
    model: Optional[CommModel] = None,
    bindings: Optional[Bindings] = None,
    result_dist: Optional[Distribution] = None,
) -> PartitionPlan:
    """Budget fallback for :func:`optimize_distribution`: no search.

    Every node computes under the canonical block distribution of its
    own indices; the SPMD lowering inserts redistributions wherever
    adjacent distributions differ, so the plan is always executable --
    it just doesn't minimize communication.  Costs are still charged
    honestly through the Section-7 cost model, so the plan's
    ``total_cost`` is comparable to a searched plan's.
    """
    model = model or CommModel()
    dist: Dict[int, Distribution] = {}
    gamma_map: Dict[int, Distribution] = {}
    sum_option: Dict[int, str] = {}
    total = 0.0
    states = 0

    def move(indices, src: Distribution, dst: Distribution) -> float:
        if src.effective(indices) == dst.effective(indices):
            return 0.0
        return model.comm_cost * move_cost_elements(
            indices, src, dst, grid, bindings
        )

    def visit(node: PNode, want: Optional[Distribution]) -> None:
        nonlocal total, states
        states += 1

        if isinstance(node, PLeaf):
            desired = (
                want
                if want is not None
                else canonical_distribution(node.indices, grid)
            )
            if no_replicate(desired):
                gamma_map[id(node)] = desired
            else:
                # initial placement must be plain; charge the broadcast
                beta = canonical_distribution(node.indices, grid)
                total += move(node.indices, beta, desired)
                gamma_map[id(node)] = beta
            dist[id(node)] = desired
            return

        if isinstance(node, PMul):
            gamma = canonical_distribution(node.indices, grid)
            visit(node.left, gamma.effective(node.left.indices))
            visit(node.right, gamma.effective(node.right.indices))
            total += model.flop_cost * calc_mul_elements(
                node.indices, gamma, grid, bindings
            )
            gamma_map[id(node)] = gamma
            out = want if want is not None else gamma
            total += move(node.indices, gamma, out)
            dist[id(node)] = out
            return

        if isinstance(node, PSum):
            child = node.child
            cgamma = canonical_distribution(child.indices, grid)
            visit(child, cgamma)
            gamma_map[id(node)] = cgamma
            total += model.flop_cost * partial_sum_elements(
                child.indices, cgamma, grid, bindings
            )
            if cgamma.position_of(node.index) is None:
                sum_option[id(node)] = "local"
                cur = cgamma
            else:
                sum_option[id(node)] = "combine"
                total += model.comm_cost * reduction_comm_elements(
                    node.indices,
                    cgamma,
                    node.index,
                    grid,
                    bindings,
                    pattern=model.reduction,
                )
                cur = reduction_result_dist(cgamma, node.index, replicate=False)
            out = want if want is not None else cur
            total += move(node.indices, cur, out)
            dist[id(node)] = out
            return

        raise TypeError(f"unknown PNode {type(node).__name__}")

    visit(root, result_dist)
    return PartitionPlan(
        root,
        grid,
        model,
        total,
        dist,
        gamma_map,
        sum_option,
        states,
        bindings,
    )
