"""Logical processor grids.

The paper views the machine as an n-dimensional grid of
``p_1 x p_2 x ... x p_n`` processors.  Array dimensions distributed
along a processor dimension are split into contiguous blocks by
``myrange``: processor coordinate ``z`` (0-based here; the paper is
1-based) owns rows ``z*N/p .. (z+1)*N/p`` of an N-extent dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple


def myrange(z: int, n: int, p: int) -> Tuple[int, int]:
    """Half-open block range of coordinate ``z`` for extent ``n`` over
    ``p`` processors (the paper's ``myrange``, 0-based).

    Blocks are balanced: the first ``n % p`` processors get one extra
    element.
    """
    if not 0 <= z < p:
        raise ValueError(f"coordinate {z} out of range for {p} processors")
    base, extra = divmod(n, p)
    start = z * base + min(z, extra)
    size = base + (1 if z < extra else 0)
    return start, start + size


@dataclass(frozen=True)
class ProcessorGrid:
    """An n-dimensional grid with extents ``dims``."""

    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("grid needs at least one dimension")
        if any(p <= 0 for p in self.dims):
            raise ValueError("grid extents must be positive")

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        out = 1
        for p in self.dims:
            out *= p
        return out

    def ranks(self) -> Iterator[Tuple[int, ...]]:
        """All processor coordinate tuples, lexicographic order."""
        return itertools.product(*(range(p) for p in self.dims))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(p) for p in self.dims)
