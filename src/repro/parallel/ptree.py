"""Expression trees for the Section-7 algorithm.

The distribution DP operates on trees with two internal node kinds,
exactly as in the paper:

* multiplication nodes with two children (elementwise product over the
  union of the children's index sets);
* summation nodes over a single index with one child.

A contraction ``sum(i, j) A * B`` becomes
``PSum(i, PSum(j, PMul(A, B)))``.  :func:`expression_to_ptree` converts
an AST expression (or an opmin operator tree, via its expression) into
this form.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Iterator, List, Tuple

from repro.expr.ast import Expr, Mul, Sum, TensorRef
from repro.expr.indices import Bindings, Index, total_extent


class PNode:
    """Base class for partitioning-tree nodes."""

    @property
    def indices(self) -> Tuple[Index, ...]:
        """Sorted index tuple of the node's value."""
        raise NotImplementedError

    def children(self) -> Tuple["PNode", ...]:
        raise NotImplementedError

    def walk(self) -> Iterator["PNode"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def internal_count(self) -> int:
        return sum(1 for n in self.walk() if not isinstance(n, PLeaf))

    def size(self, bindings: Bindings = None) -> int:
        return total_extent(self.indices, bindings)


@dataclass(frozen=True)
class PLeaf(PNode):
    """An input array."""

    ref: TensorRef

    @property
    def indices(self) -> Tuple[Index, ...]:
        return tuple(sorted(self.ref.indices))

    def children(self) -> Tuple[PNode, ...]:
        return ()

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class PMul(PNode):
    """Elementwise product over the union of child indices."""

    left: PNode
    right: PNode

    @cached_property
    def _indices(self) -> Tuple[Index, ...]:
        return tuple(sorted(set(self.left.indices) | set(self.right.indices)))

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    def children(self) -> Tuple[PNode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


@dataclass(frozen=True)
class PSum(PNode):
    """Summation over one index."""

    index: Index
    child: PNode

    def __post_init__(self) -> None:
        if self.index not in self.child.indices:
            raise ValueError(
                f"summation index {self.index.name} not in child indices"
            )

    @cached_property
    def _indices(self) -> Tuple[Index, ...]:
        return tuple(i for i in self.child.indices if i != self.index)

    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    def children(self) -> Tuple[PNode, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"sum_{self.index.name}({self.child})"


def expression_to_ptree(expr: Expr) -> PNode:
    """Convert a single-term AST expression to a partitioning tree.

    Products become left-deep multiplication chains; each summation
    index becomes its own :class:`PSum` node (innermost index first).
    ``Add`` nodes are not supported -- the DP handles one operator-tree
    node (one statement of a formula sequence) at a time.
    """
    if isinstance(expr, TensorRef):
        return PLeaf(expr)
    if isinstance(expr, Mul):
        nodes = [expression_to_ptree(f) for f in expr.factors]
        out = nodes[0]
        for node in nodes[1:]:
            out = PMul(out, node)
        return out
    if isinstance(expr, Sum):
        node = expression_to_ptree(expr.body)
        for idx in sorted(expr.indices, reverse=True):
            node = PSum(idx, node)
        return node
    raise TypeError(
        f"cannot build a partitioning tree from {type(expr).__name__}"
    )
