"""Computation and communication cost models for Section 7.

Cost semantics (shared exactly with the simulator in
:mod:`repro.parallel.simulate`, which *measures* the same quantities):

* **CalcCost** -- parallel compute time of a node: the *maximum* over
  participating processors of local work (elementwise products for a
  multiplication node, partial-sum additions for a summation node),
  weighted by ``flop_cost``.
* **MoveCost** -- redistribution time: the maximum over processors of
  elements *received* (elements needed under the target distribution
  and not already held under the source), weighted by ``comm_cost``.
  The paper's example holds: ``<j,*,1> -> <j,t,1>`` costs nothing
  because every processor already holds a superset of its target block.
* **Reduction** -- a summation over an index distributed on processor
  dimension ``d`` (``p`` processors) forms partial sums locally, then
  either combines them onto coordinate 0 of ``d`` (root receives
  ``(p-1)`` partial blocks; the result has ``1`` at position ``d``) or
  combines-and-broadcasts (replicated result, same maximum receive
  volume, held by all) -- the paper's two options.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.expr.indices import Bindings, Index
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid


@dataclass(frozen=True)
class CommModel:
    """Relative weights of computation and communication.

    ``comm_cost`` is the time to receive one element in units of one
    arithmetic operation; 8-byte elements over a network that is ~10x
    slower than the FPU give the default of 10.

    ``reduction`` selects the partial-sum combining pattern: ``"linear"``
    (everyone sends to the root; root receives ``p-1`` blocks) or
    ``"tree"`` (recursive halving; the maximum receive volume is
    ``ceil(log2 p)`` blocks).  The grid simulator implements both
    patterns, so model and measurement stay comparable.
    """

    flop_cost: float = 1.0
    comm_cost: float = 10.0
    reduction: str = "linear"

    def __post_init__(self) -> None:
        if self.reduction not in ("linear", "tree"):
            raise ValueError(
                f"reduction must be 'linear' or 'tree', got {self.reduction!r}"
            )


def _interval_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return max(0, hi - lo)


def received_elements(
    array_indices: Sequence[Index],
    source: Distribution,
    target: Distribution,
    rank: Tuple[int, ...],
    grid: ProcessorGrid,
    bindings: Optional[Bindings] = None,
) -> int:
    """Elements ``rank`` must receive going from ``source`` to
    ``target`` (exact, by per-dimension interval arithmetic)."""
    tgt = target.local_ranges(array_indices, rank, grid, bindings)
    if tgt is None:
        return 0
    src = source.local_ranges(array_indices, rank, grid, bindings)
    need = 1
    for lo, hi in tgt:
        need *= hi - lo
    if src is None:
        return need
    overlap = 1
    for t, s in zip(tgt, src):
        overlap *= _interval_overlap(t, s)
    return need - overlap


def move_cost_elements(
    array_indices: Sequence[Index],
    source: Distribution,
    target: Distribution,
    grid: ProcessorGrid,
    bindings: Optional[Bindings] = None,
) -> int:
    """Max-over-processors received elements for a redistribution."""
    return max(
        received_elements(array_indices, source, target, rank, grid, bindings)
        for rank in grid.ranks()
    )


def calc_mul_elements(
    result_indices: Sequence[Index],
    dist: Distribution,
    grid: ProcessorGrid,
    bindings: Optional[Bindings] = None,
) -> int:
    """Max per-processor products formed by a multiplication node."""
    return dist.max_local_size(result_indices, grid, bindings)


def partial_sum_elements(
    child_indices: Sequence[Index],
    dist: Distribution,
    grid: ProcessorGrid,
    bindings: Optional[Bindings] = None,
) -> int:
    """Max per-processor additions forming the partial sums."""
    return dist.max_local_size(child_indices, grid, bindings)


def reduction_result_dist(
    dist: Distribution, index: Index, replicate: bool
) -> Distribution:
    """Distribution of the summation result: the summed index's
    processor dimension becomes ``1`` (combine) or ``*`` (replicate)."""
    d = dist.position_of(index)
    if d is None:
        return dist
    entries = list(dist.entries)
    entries[d] = REPLICATED if replicate else SINGLE
    return Distribution(tuple(entries))


def reduction_comm_elements(
    result_indices: Sequence[Index],
    dist: Distribution,
    index: Index,
    grid: ProcessorGrid,
    bindings: Optional[Bindings] = None,
    pattern: str = "linear",
) -> int:
    """Max received elements while combining partial sums over
    ``index``'s processor dimension.

    ``"linear"``: everyone sends its partial block to the root, which
    receives ``p - 1`` blocks.  ``"tree"``: recursive halving; every
    surviving rank receives one block per round, ``ceil(log2 p)`` rounds.
    """
    d = dist.position_of(index)
    if d is None:
        return 0
    p = grid.dims[d]
    if p == 1:
        return 0
    root_dist = reduction_result_dist(dist, index, replicate=False)
    block = root_dist.max_local_size(result_indices, grid, bindings)
    if pattern == "tree":
        rounds = (p - 1).bit_length()  # ceil(log2 p)
        return rounds * block
    return (p - 1) * block
