"""Simulated message-counting processor grid.

This is the repository's stand-in for the paper's parallel target
machine (see DESIGN.md): a :class:`GridSimulator` executes a
:class:`~repro.parallel.partition.PartitionPlan` bottom-up, with every
virtual processor owning real numpy blocks.  Communication follows the
exact patterns the cost model assumes:

* redistribution: each processor receives the elements of its target
  block it does not already hold;
* summation over a distributed index: local partial sums, then either
  combine-to-root (root receives ``p - 1`` partial blocks) or
  combine-and-broadcast (every non-root additionally receives its result
  block).

The report carries per-processor received-element counts and local
operation counts, so tests can assert byte-for-byte agreement with
:mod:`repro.parallel.commcost` and numeric equality with the reference
einsum executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.expr.indices import Bindings, Index
from repro.parallel.commcost import received_elements, reduction_result_dist
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import PartitionPlan
from repro.parallel.ptree import PLeaf, PMul, PNode, PSum
from repro.robustness.errors import PlanError, SpecError
from repro.robustness.validation import validate_env

Rank = Tuple[int, ...]


def _walk_ptree(node: PNode):
    yield node
    for child in node.children():
        yield from _walk_ptree(child)


@dataclass
class SimulationReport:
    """Measured quantities of one plan execution."""

    received: Dict[Rank, int] = field(default_factory=dict)
    local_ops: Dict[Rank, int] = field(default_factory=dict)
    messages: int = 0
    #: (label, total received, max received on one processor) per event
    node_comm: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def event_comm_time(self) -> int:
        """Sum over events of the per-event maximum receive volume --
        the quantity the cost model's MoveCost/reduction terms bound."""
        return sum(mx for _, _, mx in self.node_comm)

    @property
    def max_received(self) -> int:
        return max(self.received.values(), default=0)

    @property
    def total_received(self) -> int:
        return sum(self.received.values())

    @property
    def max_local_ops(self) -> int:
        return max(self.local_ops.values(), default=0)


@dataclass
class _DistArray:
    """A distributed value: per-rank blocks plus its distribution."""

    indices: Tuple[Index, ...]
    dist: Distribution
    blocks: Dict[Rank, np.ndarray]


class GridSimulator:
    """Executes partition plans on a virtual processor grid."""

    def __init__(
        self,
        grid: ProcessorGrid,
        bindings: Optional[Bindings] = None,
    ) -> None:
        self.grid = grid
        self.bindings = bindings

    # -- placement helpers --------------------------------------------------

    def scatter(
        self,
        global_array: np.ndarray,
        indices: Tuple[Index, ...],
        dist: Distribution,
    ) -> _DistArray:
        """Place a global array according to a distribution (free)."""
        blocks: Dict[Rank, np.ndarray] = {}
        for rank in self.grid.ranks():
            ranges = dist.local_ranges(indices, rank, self.grid, self.bindings)
            if ranges is None:
                continue
            sel = tuple(slice(lo, hi) for lo, hi in ranges)
            blocks[rank] = np.ascontiguousarray(global_array[sel])
        return _DistArray(indices, dist, blocks)

    def assemble(self, value: _DistArray) -> np.ndarray:
        """Gather a distributed value into a global array."""
        shape = tuple(i.extent(self.bindings) for i in value.indices)
        out = np.zeros(shape)
        for rank, block in value.blocks.items():
            ranges = value.dist.local_ranges(
                value.indices, rank, self.grid, self.bindings
            )
            sel = tuple(slice(lo, hi) for lo, hi in ranges)
            out[sel] = block
        return out

    # -- communication -----------------------------------------------------

    def redistribute(
        self, value: _DistArray, target: Distribution, report: SimulationReport
    ) -> _DistArray:
        """Move a value to a new distribution, counting received volume."""
        if value.dist == target:
            return value
        global_view = self.assemble(value)
        comm_here = 0
        comm_max = 0
        for rank in self.grid.ranks():
            got = received_elements(
                value.indices, value.dist, target, rank, self.grid, self.bindings
            )
            if got:
                report.received[rank] = report.received.get(rank, 0) + got
                report.messages += 1
                comm_here += got
                comm_max = max(comm_max, got)
        report.node_comm.append(("redistribute", comm_here, comm_max))
        return self.scatter(global_view, value.indices, target)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        plan: PartitionPlan,
        inputs: Mapping[str, np.ndarray],
        validate: bool = True,
    ) -> Tuple[np.ndarray, SimulationReport]:
        """Execute the plan; returns (global result, report).

        ``validate`` checks every leaf input's presence/shape/dtype
        before the run (:func:`repro.robustness.validation.
        validate_env`), so failures name the offending tensor.
        """
        if validate:
            leaves = [
                n for n in _walk_ptree(plan.root) if isinstance(n, PLeaf)
            ]
            validate_env(
                inputs,
                (n.ref for n in leaves),
                self.bindings,
                stage="simulate",
            )
        report = SimulationReport(
            received={rank: 0 for rank in self.grid.ranks()},
            local_ops={rank: 0 for rank in self.grid.ranks()},
        )

        def axis_map(node_indices, sub_indices):
            return [node_indices.index(i) for i in sub_indices]

        def plan_entry(table: Dict[int, object], node: PNode, what: str):
            try:
                return table[id(node)]
            except KeyError:
                raise PlanError(
                    f"plan has no {what} for node {type(node).__name__}; "
                    "the plan was built for a different tree",
                    stage="simulate",
                ) from None

        def evaluate(node: PNode) -> _DistArray:
            if isinstance(node, PLeaf):
                name = node.ref.tensor.name
                try:
                    glob = np.asarray(inputs[name], dtype=np.float64)
                except KeyError:
                    raise SpecError(
                        f"no input array for {name!r}",
                        stage="simulate",
                        tensor=name,
                    ) from None
                # stored axes follow the declared signature; reorder to
                # the ptree's sorted-index convention
                declared = list(node.ref.indices)
                order = [declared.index(i) for i in node.indices]
                glob = np.transpose(glob, order)
                return self.scatter(
                    glob, node.indices, plan_entry(plan.gamma, node, "gamma")
                )

            if isinstance(node, PMul):
                gamma = plan_entry(plan.gamma, node, "gamma")
                left = evaluate(node.left)
                right = evaluate(node.right)
                left = self.redistribute(
                    left, gamma.effective(node.left.indices), report
                )
                right = self.redistribute(
                    right, gamma.effective(node.right.indices), report
                )
                blocks: Dict[Rank, np.ndarray] = {}
                for rank in self.grid.ranks():
                    ranges = gamma.local_ranges(
                        node.indices, rank, self.grid, self.bindings
                    )
                    if ranges is None:
                        continue
                    lb = _expand(left, node.indices, rank)
                    rb = _expand(right, node.indices, rank)
                    block = lb * rb
                    blocks[rank] = block
                    report.local_ops[rank] += block.size
                out = _DistArray(node.indices, gamma, blocks)
                return self.redistribute(
                    out, plan_entry(plan.dist, node, "distribution"), report
                )

            if isinstance(node, PSum):
                gamma = plan_entry(plan.gamma, node, "gamma")
                child = evaluate(node.child)
                child = self.redistribute(child, gamma, report)
                axis = list(node.child.indices).index(node.index)
                option = plan_entry(plan.sum_option, node, "sum option")
                partial_blocks: Dict[Rank, np.ndarray] = {}
                for rank, block in child.blocks.items():
                    partial_blocks[rank] = block.sum(axis=axis)
                    report.local_ops[rank] += block.size
                d = gamma.position_of(node.index)
                if d is None:
                    out_dist = gamma
                    out = _DistArray(node.indices, out_dist, partial_blocks)
                else:
                    out_dist = reduction_result_dist(
                        gamma, node.index, replicate=option == "replicate"
                    )
                    out = self._combine(
                        node,
                        gamma,
                        d,
                        partial_blocks,
                        option,
                        report,
                        pattern=plan.model.reduction,
                    )
                return self.redistribute(out, plan_entry(plan.dist, node, "distribution"), report)

            raise TypeError(f"unknown PNode {type(node).__name__}")

        def _expand(value: _DistArray, out_indices, rank) -> np.ndarray:
            """Broadcast a child's local block to the parent's local
            block shape at ``rank``."""
            block = value.blocks[rank]
            shape = []
            src_axis = 0
            for idx in out_indices:
                if idx in value.indices:
                    shape.append(block.shape[src_axis])
                    src_axis += 1
                else:
                    shape.append(1)
            return block.reshape(shape)

        result = evaluate(plan.root)
        return self.assemble(result), report

    def _combine(
        self,
        node: PSum,
        gamma: Distribution,
        proc_dim: int,
        partials: Dict[Rank, np.ndarray],
        option: str,
        report: SimulationReport,
        pattern: str = "linear",
    ) -> _DistArray:
        """Combine partial sums along ``proc_dim``; count the traffic.

        ``pattern="linear"``: every member sends to the group root.
        ``pattern="tree"``: recursive halving (the root receives
        ``ceil(log2 p)`` blocks, matching the tree cost model).
        """
        out_dist = reduction_result_dist(
            gamma, node.index, replicate=option == "replicate"
        )
        blocks: Dict[Rank, np.ndarray] = {}
        comm_here = 0
        per_rank: Dict[Rank, int] = {}

        def receive(rank: Rank, elements: int) -> None:
            nonlocal comm_here
            report.received[rank] += elements
            per_rank[rank] = per_rank.get(rank, 0) + elements
            report.messages += 1
            comm_here += elements

        groups: Dict[Rank, List[Rank]] = {}
        for rank in partials:
            key = tuple(z for d, z in enumerate(rank) if d != proc_dim)
            groups.setdefault(key, []).append(rank)
        for key, members in groups.items():
            members.sort(key=lambda r: r[proc_dim])
            root = members[0]
            if pattern == "tree":
                acc = {rank: partials[rank].copy() for rank in members}
                offset = 1
                n = len(members)
                while offset < n:
                    for pos in range(0, n, 2 * offset):
                        src_pos = pos + offset
                        if src_pos < n:
                            dst, src = members[pos], members[src_pos]
                            acc[dst] = acc[dst] + acc[src]
                            receive(dst, acc[src].size)
                    offset *= 2
                total = acc[root]
            else:
                total = partials[root].copy()
                for other in members[1:]:
                    total = total + partials[other]
                    receive(root, partials[other].size)
            holders = members if option == "replicate" else [root]
            for holder in holders:
                blocks[holder] = total
                if holder != root:
                    receive(holder, total.size)
        report.node_comm.append(
            (f"reduce[{option}/{pattern}]", comm_here,
             max(per_rank.values(), default=0))
        )
        return _DistArray(node.indices, out_dist, blocks)
