"""Runtime support for generated SPMD programs.

Generated rank programs (see :mod:`repro.parallel.spmd`) import these
helpers the way a real generated MPI code would link a communication
runtime.  Everything here is rank-local arithmetic on *boxes* --
per-dimension half-open ranges describing the region of a global array
a rank holds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.grid import myrange

Box = Tuple[Tuple[int, int], ...]


def region(
    rank: Sequence[int],
    entry_positions: Sequence[Optional[int]],
    extents: Sequence[int],
    grid_dims: Sequence[int],
) -> Box:
    """The box of the array a rank holds under a distribution.

    ``entry_positions[k]`` is the processor dimension the k-th array
    dimension is distributed on (None = undistributed).
    """
    out = []
    for pos, n in zip(entry_positions, extents):
        if pos is None:
            out.append((0, n))
        else:
            out.append(myrange(rank[pos], n, grid_dims[pos]))
    return tuple(out)


def holds(rank: Sequence[int], single_dims: Sequence[int]) -> bool:
    """Whether a rank holds data: coordinate 0 on every '1' dimension."""
    return all(rank[d] == 0 for d in single_dims)


def canonical_sender(rank: Sequence[int], dedup_dims: Sequence[int]) -> bool:
    """Among replicas, only the coordinate-0 holder sends."""
    return all(rank[d] == 0 for d in dedup_dims)


def box_volume(box: Box) -> int:
    out = 1
    for lo, hi in box:
        out *= max(0, hi - lo)
    return out


def box_intersect(a: Box, b: Box) -> Box:
    return tuple(
        (max(alo, blo), min(ahi, bhi)) for (alo, ahi), (blo, bhi) in zip(a, b)
    )


def box_empty(box: Box) -> bool:
    return any(hi <= lo for lo, hi in box)


def box_difference(a: Box, b: Box) -> List[Box]:
    """Decompose ``a \\ b`` into disjoint boxes (at most 2 per dim)."""
    inter = box_intersect(a, b)
    if box_empty(inter):
        return [a] if not box_empty(a) else []
    pieces: List[Box] = []
    current = list(a)
    for d, ((alo, ahi), (ilo, ihi)) in enumerate(zip(a, inter)):
        if alo < ilo:
            piece = list(current)
            piece[d] = (alo, ilo)
            pieces.append(tuple(piece))
        if ihi < ahi:
            piece = list(current)
            piece[d] = (ihi, ahi)
            pieces.append(tuple(piece))
        current[d] = (max(alo, ilo), min(ahi, ihi))
    return [p for p in pieces if not box_empty(p)]


def slice_of(global_array: np.ndarray, box: Box) -> np.ndarray:
    return np.ascontiguousarray(
        global_array[tuple(slice(lo, hi) for lo, hi in box)]
    )


def paste(target: np.ndarray, target_box: Box, piece_box: Box, piece) -> None:
    """Write a piece (given in global coordinates) into a local block
    whose global region is ``target_box``."""
    sel = tuple(
        slice(plo - tlo, phi - tlo)
        for (plo, phi), (tlo, thi) in zip(piece_box, target_box)
    )
    target[sel] = piece


def extract(block: np.ndarray, block_box: Box, piece_box: Box) -> np.ndarray:
    """Read a global-coordinate piece out of a local block."""
    sel = tuple(
        slice(plo - blo, phi - blo)
        for (plo, phi), (blo, bhi) in zip(piece_box, block_box)
    )
    return np.ascontiguousarray(block[sel])


def broadcast_to_axes(
    block: np.ndarray,
    own_axes: Sequence[int],
    n_out_axes: int,
) -> np.ndarray:
    """Reshape a child block so its axes land at ``own_axes`` of an
    ``n_out_axes``-dimensional product (size-1 elsewhere)."""
    shape = [1] * n_out_axes
    for size, axis in zip(block.shape, own_axes):
        shape[axis] = size
    return block.reshape(shape)
