"""Logical grid-shape selection.

The paper assumes "a logical view of the processors as a
multi-dimensional grid" -- but the *shape* of that view is itself a
compiler decision: 16 processors can be 16, 8x2, 4x4, 4x2x2, or 2x2x2x2,
and the best distribution cost differs across shapes (more dimensions
allow finer partitioning but more tuple positions to serve).

``choose_grid`` enumerates the factorizations of a processor count into
at most ``max_dims`` grid dimensions, runs the Section-7 DP on each, and
returns the cheapest plan with its shape -- completing the automation
story: the user supplies a processor *count*, the synthesis system picks
the view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.expr.indices import Bindings
from repro.parallel.commcost import CommModel
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import (
    PartitionPlan,
    canonical_plan,
    optimize_distribution,
)
from repro.parallel.ptree import PNode
from repro.robustness.budget import as_tracker
from repro.robustness.errors import BudgetExceeded


def grid_shapes(processors: int, max_dims: int = 3) -> List[Tuple[int, ...]]:
    """All ordered factorizations of ``processors`` into 1..max_dims
    dimensions (each factor >= 2, except the trivial 1-d shape)."""
    shapes: List[Tuple[int, ...]] = [(processors,)]

    def rec(remaining: int, prefix: Tuple[int, ...]) -> None:
        if len(prefix) >= max_dims:
            return
        for divisor in range(2, remaining + 1):
            if remaining % divisor:
                continue
            rest = remaining // divisor
            if rest == 1:
                if prefix:
                    shapes.append(prefix + (divisor,))
            else:
                if len(prefix) + 2 <= max_dims:
                    shapes.append(prefix + (divisor, rest))
                rec(rest, prefix + (divisor,))

    rec(processors, ())
    # dedupe, keep deterministic order
    seen = set()
    out: List[Tuple[int, ...]] = []
    for shape in shapes:
        if shape not in seen and _product(shape) == processors:
            seen.add(shape)
            out.append(shape)
    return out


def _product(values: Sequence[int]) -> int:
    out = 1
    for v in values:
        out *= v
    return out


@dataclass
class GridChoice:
    """Outcome of the grid-shape search."""

    grid: ProcessorGrid
    plan: PartitionPlan
    table: List[Tuple[Tuple[int, ...], float]] = field(default_factory=list)


def top_shapes(
    table: Sequence[Tuple[Tuple[int, ...], float]], k: int
) -> List[Tuple[int, ...]]:
    """The ``k`` cheapest grid shapes of a ``choose_grid`` table.

    This is the candidate head the empirical autotuner re-ranks by
    measured execution (:mod:`repro.autotune`); ties break toward fewer
    grid dimensions (cheaper logical view), then lexicographically.
    """
    ranked = sorted(table, key=lambda t: (t[1], len(t[0]), t[0]))
    return [shape for shape, _ in ranked[: max(1, k)]]


def choose_grid(
    tree: PNode,
    processors: int,
    model: Optional[CommModel] = None,
    bindings: Optional[Bindings] = None,
    max_dims: int = 3,
    budget=None,
) -> GridChoice:
    """Pick the cheapest logical grid shape for a processor count.

    The shape sweep is *anytime* under a ``budget``: on exhaustion the
    cheapest shape evaluated so far wins; if not even the first shape
    finished, the canonical plan on the trivial 1-D grid is returned.
    """
    if processors <= 0:
        raise ValueError("processor count must be positive")
    model = model or CommModel()
    tracker = as_tracker(budget)
    best: Optional[GridChoice] = None
    table: List[Tuple[Tuple[int, ...], float]] = []
    for shape in grid_shapes(processors, max_dims):
        grid = ProcessorGrid(shape)
        try:
            plan = optimize_distribution(
                tree, grid, model, bindings, budget=tracker
            )
        except BudgetExceeded as exc:
            if best is not None:
                tracker.degrade(
                    "distribution", exc, "best grid shape evaluated so far"
                )
                break
            tracker.degrade(
                "distribution", exc, "canonical plan on the 1-D grid"
            )
            grid = ProcessorGrid((processors,))
            plan = canonical_plan(tree, grid, model, bindings)
            best = GridChoice(grid, plan)
            table.append(((processors,), plan.total_cost))
            break
        table.append((shape, plan.total_cost))
        if best is None or plan.total_cost < best.plan.total_cost:
            best = GridChoice(grid, plan)
    assert best is not None
    best.table = table
    return best
