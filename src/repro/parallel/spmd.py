"""SPMD code generation: partition plans to per-rank parallel programs.

The paper's title promises compilation of tensor contractions *into
parallel programs*.  This module closes that loop: a
:class:`~repro.parallel.partition.PartitionPlan` is lowered to a static
schedule of typed steps (:func:`compile_schedule`) and then emitted as
the Python source of a **rank program** (:func:`generate_spmd_source`):

    def rank_program(rank, comm, arrays, state):
        ...
        yield   # superstep boundary

Every rank executes the same code, branching on its own grid
coordinates -- classic SPMD.  Communication goes through an explicit
communicator (``comm.send`` / ``comm.recv_all``) in bulk-synchronous
supersteps: the program ``yield``s between the send half and the
receive half of every data movement, and the driver (:func:`run_spmd`)
advances all ranks in lock step -- the in-process stand-in for
``mpiexec`` (see the mpi4py substitution note in DESIGN.md).

Communication patterns match the cost model exactly:

* redistribution: each receiver's needed-but-not-held region is
  decomposed into boxes; each box piece is sent by its canonical owner
  (disjoint senders, so transferred elements == the model's
  received-element count);
* reduction: partial sums, combine to the coordinate-0 root along the
  summed processor dimension, optional broadcast.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.expr.indices import Bindings, Index
from repro.parallel.commcost import reduction_result_dist
from repro.parallel.dist import Distribution, REPLICATED, SINGLE
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import PartitionPlan
from repro.parallel.ptree import PLeaf, PMul, PNode, PSum
from repro.parallel.spmd_runtime import paste
from repro.robustness.errors import CommFailure, InjectedFault
from repro.robustness.faults import FaultSchedule

Rank = Tuple[int, ...]


# ---------------------------------------------------------------------------
# communicator
# ---------------------------------------------------------------------------


class LocalComm:
    """In-process mailbox communicator with traffic counters.

    ``faults`` (a :class:`~repro.robustness.faults.FaultSchedule`)
    injects message drops by cross-rank message ordinal: a dropped
    attempt is charged to the sender (the network ate it) but never
    delivered; the communicator retries up to ``max_retries`` times
    (sleeping ``retry_backoff * attempt`` seconds between attempts)
    and raises :class:`~repro.robustness.errors.CommFailure` when the
    drop schedule outlasts the retry budget.  Fault-free behaviour is
    unchanged.

    ``sleep`` is the backoff delay function (default ``time.sleep``);
    tests inject a recorder so nonzero ``retry_backoff`` schedules can
    be asserted without wall-clock sleeping.
    """

    def __init__(
        self,
        grid: ProcessorGrid,
        faults: Optional[FaultSchedule] = None,
        max_retries: int = 3,
        retry_backoff: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.grid = grid
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.sleep = sleep
        self._mail: Dict[Tuple[Rank, str], List] = {}
        self.sent_elements: Dict[Rank, int] = {r: 0 for r in grid.ranks()}
        self.received_elements: Dict[Rank, int] = {
            r: 0 for r in grid.ranks()
        }
        self.messages = 0
        self.dropped = 0
        self.retries = 0
        self._ordinal = 0

    def send(self, source: Rank, dest: Rank, tag: str, payload) -> None:
        if source == dest:
            self._mail.setdefault((dest, tag), []).append(payload)
            return
        size = int(np.asarray(payload[1]).size)
        ordinal = self._ordinal
        self._ordinal += 1
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries += 1
                if self.retry_backoff > 0.0:
                    self.sleep(self.retry_backoff * attempt)
            self.sent_elements[source] += size
            if self.faults is not None and self.faults.should_drop(
                ordinal, attempt
            ):
                self.dropped += 1
                continue
            self._mail.setdefault((dest, tag), []).append(payload)
            self.received_elements[dest] += size
            self.messages += 1
            return
        raise CommFailure(
            f"message {ordinal} from rank {source} to rank {dest} "
            f"dropped on every attempt; {self.max_retries} retries "
            "exhausted",
            stage="spmd",
            source=source,
            dest=dest,
        )

    def recv_all(self, dest: Rank, tag: str) -> List:
        return self._mail.pop((dest, tag), [])

    def drain(self) -> Dict[Tuple[Rank, str], List]:
        """Take all pending mail (the multi-process router's delivery
        hook: messages are accounted here, then shipped to workers)."""
        mail = self._mail
        self._mail = {}
        return mail

    @property
    def total_traffic(self) -> int:
        return sum(self.sent_elements.values())


# ---------------------------------------------------------------------------
# schedule lowering
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One typed schedule entry."""

    kind: str  # 'slice' | 'move' | 'mul' | 'partial' | 'combine' | 'bcast' | 'result'
    out: str
    args: Tuple


def _dist_meta(
    dist: Distribution,
    indices: Sequence[Index],
) -> Tuple[Tuple[Optional[int], ...], Tuple[int, ...], Tuple[int, ...]]:
    """(per-array-dim processor positions, '1' dims, replica-dedup dims)
    of a distribution as seen by an array."""
    eff = dist.effective(indices)
    positions = tuple(eff.position_of(i) for i in indices)
    single = tuple(
        d for d, e in enumerate(eff.entries) if e is SINGLE
    )
    dedup = tuple(
        d
        for d, e in enumerate(eff.entries)
        if e is REPLICATED
    )
    return positions, single, dedup


def compile_schedule(plan: PartitionPlan) -> List[Step]:
    """Lower a partition plan to the static step schedule."""
    steps: List[Step] = []
    counter = itertools.count()

    def fresh() -> str:
        return f"v{next(counter)}"

    def move(var: str, indices, src: Distribution, dst: Distribution) -> str:
        out = fresh()
        steps.append(Step("move", out, (var, tuple(indices), src, dst)))
        return out

    def visit(node: PNode) -> Tuple[str, Distribution]:
        if isinstance(node, PLeaf):
            var = fresh()
            dist = plan.gamma[id(node)]
            steps.append(
                Step(
                    "slice",
                    var,
                    (
                        node.ref.tensor.name,
                        tuple(node.ref.indices),
                        tuple(node.indices),
                        dist,
                    ),
                )
            )
            out_dist = plan.dist[id(node)]
            if out_dist.effective(node.indices) != dist.effective(node.indices):
                return move(var, node.indices, dist, out_dist), out_dist
            return var, out_dist

        if isinstance(node, PMul):
            gamma = plan.gamma[id(node)]
            lvar, ldist = visit(node.left)
            rvar, rdist = visit(node.right)
            leff = gamma.effective(node.left.indices)
            reff = gamma.effective(node.right.indices)
            if ldist.effective(node.left.indices) != leff:
                lvar = move(lvar, node.left.indices, ldist, leff)
            if rdist.effective(node.right.indices) != reff:
                rvar = move(rvar, node.right.indices, rdist, reff)
            var = fresh()
            steps.append(
                Step(
                    "mul",
                    var,
                    (
                        lvar,
                        tuple(node.left.indices),
                        rvar,
                        tuple(node.right.indices),
                        tuple(node.indices),
                        gamma,
                    ),
                )
            )
            out_dist = plan.dist[id(node)]
            if out_dist.effective(node.indices) != gamma.effective(node.indices):
                return move(var, node.indices, gamma, out_dist), out_dist
            return var, gamma

        if isinstance(node, PSum):
            gamma = plan.gamma[id(node)]
            cvar, cdist = visit(node.child)
            ceff = gamma.effective(node.child.indices)
            if cdist.effective(node.child.indices) != ceff:
                cvar = move(cvar, node.child.indices, cdist, gamma)
            pvar = fresh()
            steps.append(
                Step(
                    "partial",
                    pvar,
                    (cvar, tuple(node.child.indices), node.index,
                     tuple(node.indices), gamma),
                )
            )
            option = plan.sum_option[id(node)]
            d = gamma.position_of(node.index)
            if d is None:
                var, cur = pvar, gamma
            else:
                var = fresh()
                steps.append(
                    Step(
                        "combine",
                        var,
                        (pvar, tuple(node.indices), d, gamma),
                    )
                )
                cur = reduction_result_dist(gamma, node.index, replicate=False)
                if option == "replicate":
                    bvar = fresh()
                    steps.append(
                        Step("bcast", bvar, (var, tuple(node.indices), d, cur))
                    )
                    var = bvar
                    cur = reduction_result_dist(
                        gamma, node.index, replicate=True
                    )
            out_dist = plan.dist[id(node)]
            if out_dist.effective(node.indices) != cur.effective(node.indices):
                return move(var, node.indices, cur, out_dist), out_dist
            return var, out_dist

        raise TypeError(type(node).__name__)

    root_var, root_dist = visit(plan.root)
    steps.append(
        Step("result", root_var, (tuple(plan.root.indices), root_dist))
    )
    return steps


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------


def generate_spmd_source(
    plan: PartitionPlan,
    name: str = "rank_program",
    semiring: str = "plus_times",
) -> str:
    """Emit the per-rank program source for a partition plan.

    ``semiring`` selects the scalar algebra (:mod:`repro.semiring`):
    local products emit the combine ufunc, partial sums emit the reduce
    ufunc's axis reduction, and the combine superstep's cross-rank
    accumulation emits the reduce ufunc -- the emitted text is what
    ships to process-backend workers, so every execution substrate
    inherits the algebra from this one emission site.
    """
    from repro.semiring import get_semiring

    sr = get_semiring(semiring)
    grid = plan.grid
    bindings = plan.bindings
    steps = compile_schedule(plan)
    ranks = list(grid.ranks())

    L: List[str] = [
        "# generated SPMD rank program -- every rank runs this code,",
        "# branching on its own grid coordinates; `yield` marks a",
        "# bulk-synchronous superstep boundary.",
        "import numpy as np",
        "from repro.parallel.spmd_runtime import (",
        "    region, holds, canonical_sender, box_intersect, box_empty,",
        "    box_difference, box_volume, slice_of, paste, extract,",
        "    broadcast_to_axes,",
        ")",
        "",
        f"GRID = {tuple(grid.dims)!r}",
        f"RANKS = {ranks!r}",
        "",
        f"def {name}(rank, comm, arrays, state):",
    ]

    def ext(indices) -> Tuple[int, ...]:
        return tuple(i.extent(bindings) for i in indices)

    def emit(text: str = "") -> None:
        L.append(("    " + text) if text else "")

    for knum, step in enumerate(steps):
        tag = f"s{knum}"
        if step.kind == "slice":
            tensor_name, ref_indices, node_indices, dist = step.args
            pos, single, _ = _dist_meta(dist, node_indices)
            perm = tuple(
                list(ref_indices).index(i) for i in node_indices
            )
            emit(f"# step {knum}: place input {tensor_name} as {dist}")
            emit(f"if holds(rank, {single!r}):")
            emit(f"    _box = region(rank, {pos!r}, {ext(node_indices)!r}, GRID)")
            emit(
                f"    state[{step.out!r}] = (_box, slice_of("
                f"np.transpose(np.asarray(arrays[{tensor_name!r}], "
                f"dtype=np.float64), {perm!r}), _box))"
            )
            emit("else:")
            emit(f"    state[{step.out!r}] = (None, None)")
            emit("yield")

        elif step.kind == "move":
            var, indices, src, dst = step.args
            spos, ssingle, sdedup = _dist_meta(src, indices)
            dpos, dsingle, _ = _dist_meta(dst, indices)
            extents = ext(indices)
            emit(f"# step {knum}: redistribute {src} -> {dst}")
            emit(f"if holds(rank, {ssingle!r}) and canonical_sender(rank, {sdedup!r}):")
            emit(f"    _mybox, _myblk = state[{var!r}]")
            emit("    for _other in RANKS:")
            emit(f"        if not holds(_other, {dsingle!r}):")
            emit("            continue")
            emit(f"        _need = region(_other, {dpos!r}, {extents!r}, GRID)")
            emit(f"        if holds(_other, {ssingle!r}):")
            emit(
                f"            _pieces = box_difference(_need, "
                f"region(_other, {spos!r}, {extents!r}, GRID))"
            )
            emit("        else:")
            emit("            _pieces = [_need]")
            emit("        for _piece in _pieces:")
            emit("            _part = box_intersect(_piece, _mybox)")
            emit("            if not box_empty(_part):")
            emit(
                f"                comm.send(rank, _other, {tag!r}, "
                "(_part, extract(_myblk, _mybox, _part)))"
            )
            emit("yield")
            emit(f"if holds(rank, {dsingle!r}):")
            emit(f"    _box = region(rank, {dpos!r}, {extents!r}, GRID)")
            emit("    _blk = np.zeros(tuple(hi - lo for lo, hi in _box))")
            emit(f"    if holds(rank, {ssingle!r}):")
            emit(f"        _own = box_intersect(_box, state[{var!r}][0])")
            emit("        if not box_empty(_own):")
            emit(
                f"            paste(_blk, _box, _own, "
                f"extract(state[{var!r}][1], state[{var!r}][0], _own))"
            )
            emit(f"    for _pbox, _piece in comm.recv_all(rank, {tag!r}):")
            emit("        paste(_blk, _box, _pbox, _piece)")
            emit(f"    state[{step.out!r}] = (_box, _blk)")
            emit("else:")
            emit(f"    state[{step.out!r}] = (None, None)")
            emit("yield")

        elif step.kind == "mul":
            lvar, lind, rvar, rind, oind, gamma = step.args
            opos, osingle, _ = _dist_meta(gamma, oind)
            laxes = tuple(list(oind).index(i) for i in lind)
            raxes = tuple(list(oind).index(i) for i in rind)
            emit(f"# step {knum}: local products under {gamma}")
            emit(f"if holds(rank, {osingle!r}):")
            emit(f"    _box = region(rank, {opos!r}, {ext(oind)!r}, GRID)")
            emit(
                f"    _lb = broadcast_to_axes(state[{lvar!r}][1], "
                f"{laxes!r}, {len(oind)})"
            )
            emit(
                f"    _rb = broadcast_to_axes(state[{rvar!r}][1], "
                f"{raxes!r}, {len(oind)})"
            )
            if sr.is_default:
                emit(f"    state[{step.out!r}] = (_box, _lb * _rb)")
            else:
                emit(
                    f"    state[{step.out!r}] = (_box, "
                    f"np.{sr.combine_ufunc}(_lb, _rb))"
                )
            emit("else:")
            emit(f"    state[{step.out!r}] = (None, None)")
            emit("yield")

        elif step.kind == "partial":
            cvar, cind, sidx, oind, gamma = step.args
            axis = list(cind).index(sidx)
            emit(f"# step {knum}: partial sums over {sidx.name}")
            emit(f"_held = state[{cvar!r}]")
            emit("if _held[0] is not None:")
            emit(
                f"    _box = tuple(r for _k, r in enumerate(_held[0]) "
                f"if _k != {axis})"
            )
            if sr.is_default:
                emit(
                    f"    state[{step.out!r}] = "
                    f"(_box, _held[1].sum(axis={axis}))"
                )
            else:
                emit(
                    f"    state[{step.out!r}] = (_box, "
                    f"np.{sr.reduce_ufunc}.reduce(_held[1], axis={axis}))"
                )
            emit("else:")
            emit(f"    state[{step.out!r}] = (None, None)")
            emit("yield")

        elif step.kind == "combine":
            pvar, oind, proc_dim, gamma = step.args
            emit(f"# step {knum}: combine partials to root of dim {proc_dim}")
            emit(f"_root = tuple(0 if _d == {proc_dim} else _z "
                 "for _d, _z in enumerate(rank))")
            emit(f"if state[{pvar!r}][0] is not None and rank != _root:")
            emit(f"    comm.send(rank, _root, {tag!r}, state[{pvar!r}])")
            emit("yield")
            emit(f"if rank == _root and state[{pvar!r}][0] is not None:")
            emit(f"    _box, _blk = state[{pvar!r}]")
            emit("    _blk = _blk.copy()")
            emit(f"    for _pbox, _piece in comm.recv_all(rank, {tag!r}):")
            if sr.is_default:
                emit("        _blk += _piece")
            else:
                emit(f"        _blk = np.{sr.reduce_ufunc}(_blk, _piece)")
            emit(f"    state[{step.out!r}] = (_box, _blk)")
            emit("else:")
            emit(f"    state[{step.out!r}] = (None, None)")
            emit("yield")

        elif step.kind == "bcast":
            cvar, oind, proc_dim, root_dist = step.args
            emit(f"# step {knum}: broadcast along dim {proc_dim}")
            emit(f"_root = tuple(0 if _d == {proc_dim} else _z "
                 "for _d, _z in enumerate(rank))")
            emit(f"if rank == _root and state[{cvar!r}][0] is not None:")
            emit("    for _other in RANKS:")
            emit(
                f"        if _other != rank and tuple(0 if _d == {proc_dim} "
                "else _z for _d, _z in enumerate(_other)) == _root:"
            )
            emit(f"            comm.send(rank, _other, {tag!r}, state[{cvar!r}])")
            emit("yield")
            emit(f"if rank == _root:")
            emit(f"    state[{step.out!r}] = state[{cvar!r}]")
            emit("else:")
            emit(f"    _got = comm.recv_all(rank, {tag!r})")
            emit(
                f"    state[{step.out!r}] = _got[0] if _got "
                "else (None, None)"
            )
            emit("yield")

        elif step.kind == "result":
            indices, dist = step.args
            emit(f"# step {knum}: expose the result block")
            emit(f"state['__result__'] = state[{step.out!r}]")
            emit("yield")

        else:  # pragma: no cover - exhaustive
            raise TypeError(step.kind)

    return "\n".join(L) + "\n"


@dataclass
class SpmdRun:
    """Outcome of an in-process SPMD execution."""

    result: np.ndarray
    comm: LocalComm
    source: str
    supersteps: int
    restarts: int = 0


@dataclass
class SpmdSequenceRun:
    """Outcome of executing a whole formula sequence as SPMD programs."""

    arrays: Dict[str, np.ndarray]  # produced global arrays (declared axes)
    runs: List[Tuple[str, SpmdRun]]
    total_traffic: int
    total_supersteps: int


def run_spmd(
    plan: PartitionPlan,
    inputs,
    name: str = "rank_program",
    faults: Optional[FaultSchedule] = None,
    max_retries: int = 3,
    max_restarts: int = 3,
    retry_backoff: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    semiring: str = "plus_times",
) -> SpmdRun:
    """Generate, compile, and execute the rank program on all ranks.

    The driver advances every rank program one superstep at a time
    (lock-step, like a BSP machine), then assembles the distributed
    result into a global array.

    ``faults`` injects failures: message drops are retried inside the
    communicator (see :class:`LocalComm`), and a scheduled superstep
    crash aborts the statement, which is restarted from its inputs with
    a fresh communicator (statement-level restart: inputs are never
    mutated, so a rerun is bit-identical).  Each scheduled crash fires
    once; exceeding ``max_restarts`` raises
    :class:`~repro.robustness.errors.CommFailure`.
    """
    source = generate_spmd_source(plan, name, semiring=semiring)
    namespace: Dict[str, object] = {}
    exec(compile(source, "<generated spmd>", "exec"), namespace)
    program = namespace[name]

    grid = plan.grid
    restarts = 0
    fired_crashes: set = set()
    while True:
        comm = LocalComm(
            grid, faults=faults, max_retries=max_retries,
            retry_backoff=retry_backoff, sleep=sleep,
        )
        states: Dict[Rank, Dict] = {r: {} for r in grid.ranks()}
        gens = {
            r: program(r, comm, inputs, states[r]) for r in grid.ranks()
        }
        supersteps = 0
        live = dict(gens)
        try:
            while live:
                if (
                    faults is not None
                    and supersteps in faults.crash_supersteps
                    and supersteps not in fired_crashes
                ):
                    fired_crashes.add(supersteps)
                    raise InjectedFault(
                        f"rank crash injected at superstep {supersteps}",
                        stage="spmd",
                    )
                done = []
                for rank, gen in live.items():
                    try:
                        next(gen)
                    except StopIteration:
                        done.append(rank)
                supersteps += 1
                for rank in done:
                    del live[rank]
            break
        except InjectedFault:
            restarts += 1
            if restarts > max_restarts:
                raise CommFailure(
                    f"execution did not complete within {max_restarts} "
                    "restarts",
                    stage="spmd",
                ) from None

    indices = tuple(plan.root.indices)
    shape = tuple(i.extent(plan.bindings) for i in indices)
    if semiring == "plus_times":
        out = np.zeros(shape)
    else:
        from repro.semiring import get_semiring

        # result blocks partition the output, but an identity-element
        # background is the only neutral fill outside plus_times
        out = np.full(shape, get_semiring(semiring).zero)
    for rank, state in states.items():
        box, blk = state.get("__result__", (None, None))
        if box is not None:
            paste(out, tuple((0, n) for n in shape), box, blk)
    return SpmdRun(out, comm, source, supersteps, restarts)


def run_spmd_sequence(
    statements,
    seq_plan,
    inputs,
    faults: Optional[FaultSchedule] = None,
    max_retries: int = 3,
    max_restarts: int = 3,
    backend: str = "local",
    procs: Optional[int] = None,
    pool=None,
    transport: str = "shm",
    semiring: str = "plus_times",
) -> SpmdSequenceRun:
    """Execute a whole-sequence plan (:func:`repro.parallel.program_plan.
    plan_sequence`) as a series of generated SPMD programs.

    Each statement's result is gathered and handed to the next program
    with its axes restored to the result tensor's declared order (the
    storage convention of the rest of the repository).  The per-program
    gather/re-scatter is an artifact of running programs independently;
    traffic inside each program still matches the cost model.

    ``faults`` applies to *every* statement's program (drop ordinals
    and crash supersteps restart per statement).

    ``backend`` selects the driver: ``"local"`` is the in-process
    lock-step driver (:func:`run_spmd`); ``"process"`` runs every rank
    in a worker OS process (:mod:`repro.runtime.process`) with at most
    ``procs`` workers, reusing one worker ``pool`` across the sequence
    when given.  ``transport`` (``"shm"`` or ``"pipe"``) selects the
    process backend's ndarray wire (ignored for ``"local"`` and when an
    existing ``pool`` is passed -- the pool's own transport wins).
    """
    if backend not in ("local", "process"):
        raise ValueError(
            f"unknown SPMD backend {backend!r} (use 'local' or 'process')"
        )
    run_one = run_spmd
    owned_pool = None
    if backend == "process":
        from repro.runtime.process import SpmdProcessPool, run_spmd_process

        if pool is None and seq_plan.plans:
            grid_size = seq_plan.plans[0][1].grid.size
            pool = owned_pool = SpmdProcessPool(
                procs or grid_size, transport=transport
            )

        def run_one(plan, arrays, **kw):
            return run_spmd_process(plan, arrays, pool=pool, procs=procs, **kw)

    declared = {s.result.name: tuple(s.result.indices) for s in statements}
    try:
        return _run_sequence(
            seq_plan, run_one, dict(inputs), declared,
            faults, max_retries, max_restarts, semiring,
        )
    finally:
        if owned_pool is not None:
            owned_pool.close()


def _run_sequence(
    seq_plan, run_one, arrays, declared, faults, max_retries, max_restarts,
    semiring="plus_times",
) -> SpmdSequenceRun:
    runs: List[Tuple[str, SpmdRun]] = []
    traffic = 0
    steps = 0
    for name, plan in seq_plan.plans:
        run = run_one(
            plan, arrays, faults=faults, max_retries=max_retries,
            max_restarts=max_restarts, semiring=semiring,
        )
        runs.append((name, run))
        traffic += run.comm.total_traffic
        steps += run.supersteps
        # run_spmd returns axes in sorted-index order (the ptree
        # convention); store under the producing statement's declared
        # order so later references slice correctly
        sorted_idx = tuple(plan.root.indices)
        order = declared.get(name, sorted_idx)
        perm = tuple(sorted_idx.index(i) for i in order)
        arrays[name] = (
            np.transpose(run.result, perm) if perm else run.result
        )
    return SpmdSequenceRun(arrays, runs, traffic, steps)
