"""Distribution n-tuples (paper Section 7).

A :class:`Distribution` assigns to each processor dimension one of:

* an :class:`~repro.expr.indices.Index` -- the array dimension carrying
  that index is block-distributed along the processor dimension;
* :data:`REPLICATED` (``*``) -- data replicated along the dimension;
* :data:`SINGLE` (``1``) -- only processors with coordinate 0 on the
  dimension hold data.

Paper conventions implemented here:

* an index subscripting the array but absent from the tuple leaves that
  array dimension undistributed (every holder stores it fully);
* an index present in the tuple but absent from the array acts as
  :data:`REPLICATED` for that array.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.expr.indices import Bindings, Index
from repro.parallel.grid import ProcessorGrid, myrange


class _Marker:
    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return self.text

    def __reduce__(self):
        # markers are compared by identity (``e is SINGLE``): pickling
        # and deepcopy must revive the module singletons, not clones
        return (_marker, (self.text,))


def _marker(text: str) -> "_Marker":
    return REPLICATED if text == "*" else SINGLE


#: Replication marker (the paper's ``*``).
REPLICATED = _Marker("*")
#: First-processor marker (the paper's ``1``).
SINGLE = _Marker("1")

Entry = Union[Index, _Marker]


@dataclass(frozen=True)
class Distribution:
    """An n-tuple over the processor dimensions."""

    entries: Tuple[Entry, ...]

    def __post_init__(self) -> None:
        indices = [e for e in self.entries if isinstance(e, Index)]
        if len(indices) != len(set(indices)):
            raise ValueError("an index may appear in at most one position")

    @property
    def ndims(self) -> int:
        return len(self.entries)

    def indices(self) -> Set[Index]:
        return {e for e in self.entries if isinstance(e, Index)}

    def position_of(self, index: Index) -> Optional[int]:
        for d, e in enumerate(self.entries):
            if e == index:
                return d
        return None

    def holds(self, rank: Tuple[int, ...]) -> bool:
        """Whether the processor at ``rank`` stores any data."""
        return all(
            rank[d] == 0
            for d, e in enumerate(self.entries)
            if e is SINGLE
        )

    def holder_count(self, grid: ProcessorGrid) -> int:
        """Number of processors holding (a copy of) data."""
        out = 1
        for d, e in enumerate(self.entries):
            if e is not SINGLE:
                out *= grid.dims[d]
        return out

    def effective(self, array_indices: Sequence[Index]) -> "Distribution":
        """The distribution as seen by an array: tuple indices absent
        from the array act as replication."""
        entries = tuple(
            e
            if not isinstance(e, Index) or e in array_indices
            else REPLICATED
            for e in self.entries
        )
        return Distribution(entries)

    def local_ranges(
        self,
        array_indices: Sequence[Index],
        rank: Tuple[int, ...],
        grid: ProcessorGrid,
        bindings: Optional[Bindings] = None,
    ) -> Optional[List[Tuple[int, int]]]:
        """Half-open ranges of the array block held at ``rank``, or
        ``None`` when the rank holds nothing."""
        if len(rank) != self.ndims or self.ndims != grid.ndims:
            raise ValueError("rank/distribution/grid dimension mismatch")
        if not self.holds(rank):
            return None
        ranges: List[Tuple[int, int]] = []
        for idx in array_indices:
            d = self.position_of(idx)
            n = idx.extent(bindings)
            if d is None:
                ranges.append((0, n))
            else:
                ranges.append(myrange(rank[d], n, grid.dims[d]))
        return ranges

    def local_size(
        self,
        array_indices: Sequence[Index],
        rank: Tuple[int, ...],
        grid: ProcessorGrid,
        bindings: Optional[Bindings] = None,
    ) -> int:
        """Elements held at ``rank`` (0 when the rank holds nothing)."""
        ranges = self.local_ranges(array_indices, rank, grid, bindings)
        if ranges is None:
            return 0
        out = 1
        for lo, hi in ranges:
            out *= hi - lo
        return out

    def max_local_size(
        self,
        array_indices: Sequence[Index],
        grid: ProcessorGrid,
        bindings: Optional[Bindings] = None,
    ) -> int:
        """Largest per-processor block (the load-balance-relevant size)."""
        return max(
            self.local_size(array_indices, rank, grid, bindings)
            for rank in grid.ranks()
        )

    def ownership_mask(
        self,
        array_indices: Sequence[Index],
        rank: Tuple[int, ...],
        grid: ProcessorGrid,
        bindings: Optional[Bindings] = None,
    ) -> np.ndarray:
        """Boolean mask over the full array: elements held at ``rank``."""
        shape = tuple(i.extent(bindings) for i in array_indices)
        mask = np.zeros(shape, dtype=bool)
        ranges = self.local_ranges(array_indices, rank, grid, bindings)
        if ranges is not None:
            mask[tuple(slice(lo, hi) for lo, hi in ranges)] = True
        return mask

    def __str__(self) -> str:
        inner = ",".join(
            e.name if isinstance(e, Index) else e.text for e in self.entries
        )
        return f"<{inner}>"


def enumerate_distributions(
    array_indices: Sequence[Index],
    grid: ProcessorGrid,
) -> List[Distribution]:
    """All distribution n-tuples for an array on a grid.

    Each position takes one of the array's indices (each used at most
    once), ``*``, or ``1`` -- the paper's ``q = O(m^n)`` tuple space.
    """
    alphabet: List[Entry] = list(dict.fromkeys(array_indices)) + [
        REPLICATED,
        SINGLE,
    ]
    out: List[Distribution] = []
    for combo in itertools.product(alphabet, repeat=grid.ndims):
        indices = [e for e in combo if isinstance(e, Index)]
        if len(indices) != len(set(indices)):
            continue
        out.append(Distribution(tuple(combo)))
    return out


def no_replicate(dist: Distribution) -> bool:
    """The paper's ``NoReplicate`` predicate."""
    return all(e is not REPLICATED for e in dist.entries)
