"""Whole-sequence distribution planning.

The paper's Section-7 algorithm runs on the *entire* operator tree of a
computation ("Given an operation-optimal operator tree...").  A formula
sequence factors that tree into statements; this module re-assembles the
full tree by inlining each single-consumer temporary's definition into
its use site, runs the DP once, and maps the chosen distributions back
to per-statement plans.

Temporaries with several consumers (CSE products) cannot be inlined into
a tree; they are planned as separate trees whose chosen root
distribution becomes the *fixed initial distribution* of the
corresponding leaf in every consumer (leaf redistribution from that
distribution is then charged, instead of the free-placement rule used
for true inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.expr.ast import Add, Expr, Mul, Statement, Sum, TensorRef
from repro.expr.indices import Bindings
from repro.parallel.commcost import CommModel, move_cost_elements
from repro.parallel.dist import Distribution, enumerate_distributions, no_replicate
from repro.parallel.grid import ProcessorGrid
from repro.parallel.partition import (
    PartitionPlan,
    canonical_plan,
    optimize_distribution,
)
from repro.robustness.budget import as_tracker
from repro.robustness.errors import BudgetExceeded
from repro.parallel.ptree import PLeaf, PMul, PNode, PSum, expression_to_ptree


def inline_sequence(statements: Sequence[Statement]) -> Expr:
    """Inline a tree-structured formula sequence into one expression.

    Each temporary must have exactly one consumer; the final statement's
    expression is returned with every temporary reference replaced by
    its (recursively inlined) definition.  Raises :class:`ValueError`
    for shared temporaries or ``+=`` accumulation.
    """
    producers: Dict[str, Statement] = {}
    for stmt in statements:
        if stmt.accumulate:
            raise ValueError("cannot inline accumulating statements")
        if stmt.result.name in producers:
            raise ValueError(f"{stmt.result.name} produced twice")
        producers[stmt.result.name] = stmt

    consumers: Dict[str, int] = {}
    for stmt in statements:
        for ref in stmt.expr.refs():
            if ref.tensor.name in producers:
                consumers[ref.tensor.name] = (
                    consumers.get(ref.tensor.name, 0) + 1
                )
    shared = {n for n, c in consumers.items() if c > 1}
    if shared:
        raise ValueError(
            f"temporaries with several consumers cannot be inlined: "
            f"{sorted(shared)}"
        )

    def uses_functions(stmt: Statement) -> bool:
        return any(ref.tensor.is_function for ref in stmt.expr.refs())

    def subst(expr: Expr) -> Expr:
        if isinstance(expr, TensorRef):
            stmt = producers.get(expr.tensor.name)
            if stmt is None or stmt is statements[-1] or uses_functions(stmt):
                # function materializations stay array leaves: their
                # elements cannot be fetched from an input array by a
                # distributed program; they are produced locally first
                return expr
            body = subst(stmt.expr)
            # align the definition's indices with the use site's
            from repro.expr.canonical import rename_indices

            mapping = {
                decl: use
                for decl, use in zip(stmt.result.indices, expr.indices)
                if decl != use
            }
            if mapping:
                # bound (summation) indices of the body must not collide
                # with the renamed targets; formula sequences from opmin
                # use globally consistent naming, so plain renaming of
                # the free indices is sound here
                body = rename_indices(body, mapping)
            return body
        if isinstance(expr, Mul):
            return Mul(tuple(subst(f) for f in expr.factors))
        if isinstance(expr, Sum):
            return Sum(expr.indices, subst(expr.body))
        if isinstance(expr, Add):
            return Add(tuple((c, subst(t)) for c, t in expr.terms))
        raise TypeError(f"unknown node {type(expr).__name__}")

    return subst(statements[-1].expr)


@dataclass
class SequencePlan:
    """Distribution plans covering a whole formula sequence."""

    plans: List[Tuple[str, PartitionPlan]]  # (result name, plan), in order
    total_cost: float
    #: chosen distribution of each produced array
    produced_dist: Dict[str, Distribution] = field(default_factory=dict)

    def describe(self) -> str:
        out = [f"total modeled cost {self.total_cost:,.0f}"]
        for name, plan in self.plans:
            out.append(f"--- {name} ---")
            out.append(plan.describe())
        return "\n".join(out)


def plan_sequence(
    statements: Sequence[Statement],
    grid: ProcessorGrid,
    model: Optional[CommModel] = None,
    bindings: Optional[Bindings] = None,
    budget=None,
) -> SequencePlan:
    """Plan distributions across a formula sequence.

    Tree-structured sequences are inlined and planned with one run of
    the Section-7 DP (the paper's intended use).  Sequences with shared
    temporaries or multi-term combines fall back to statement order:
    each statement is planned with its already-produced operands pinned
    to their chosen distributions.

    When a ``budget`` runs out the Section-7 DP is replaced by
    :func:`repro.parallel.partition.canonical_plan` per tree -- always
    an executable plan, just not communication-minimal.
    """
    model = model or CommModel()
    tracker = as_tracker(budget)
    try:
        whole = inline_sequence(statements)
        tree = expression_to_ptree(whole)
    except (ValueError, TypeError):
        return _plan_statementwise(statements, grid, model, bindings, tracker)
    try:
        plan = optimize_distribution(tree, grid, model, bindings, budget=tracker)
    except BudgetExceeded as exc:
        tracker.degrade("distribution", exc, "canonical block distribution")
        plan = canonical_plan(tree, grid, model, bindings)
    name = statements[-1].result.name
    return SequencePlan(
        [(name, plan)],
        plan.total_cost,
        {name: plan.dist[id(tree)]},
    )


def _plan_statementwise(
    statements: Sequence[Statement],
    grid: ProcessorGrid,
    model: CommModel,
    bindings: Optional[Bindings],
    tracker=None,
) -> SequencePlan:
    produced: Dict[str, Distribution] = {}
    plans: List[Tuple[str, PartitionPlan]] = []
    total = 0.0
    for stmt in statements:
        try:
            tree = expression_to_ptree(stmt.expr)
        except TypeError:
            # multi-term combine: keep every operand where it is; the
            # elementwise addition is local if distributions match --
            # charge the cost of aligning all operands to the first's
            refs = list(stmt.expr.refs())
            base = produced.get(refs[0].tensor.name)
            cost = 0.0
            if base is not None:
                for ref in refs[1:]:
                    src = produced.get(ref.tensor.name)
                    if src is not None and src != base:
                        cost += model.comm_cost * move_cost_elements(
                            tuple(sorted(ref.indices)), src, base, grid, bindings
                        )
                produced[stmt.result.name] = base
            total += cost
            continue
        plan = _plan_with_pinned_leaves(
            tree, grid, model, bindings, produced, tracker
        )
        plans.append((stmt.result.name, plan))
        produced[stmt.result.name] = plan.dist[id(tree)]
        total += plan.total_cost
    return SequencePlan(plans, total, produced)


def _plan_with_pinned_leaves(
    tree: PNode,
    grid: ProcessorGrid,
    model: CommModel,
    bindings: Optional[Bindings],
    produced: Mapping[str, Distribution],
    tracker=None,
) -> PartitionPlan:
    """Run the DP but charge pinned leaves their redistribution cost
    from the distribution they were produced in."""
    # cheap approach: run the standard DP, then add the fixed cost of
    # moving each pinned leaf from its produced distribution to the
    # distribution the plan assumed for it (free placement otherwise).
    try:
        plan = optimize_distribution(tree, grid, model, bindings, budget=tracker)
    except BudgetExceeded as exc:
        if tracker is not None:
            tracker.degrade(
                "distribution", exc, "canonical block distribution"
            )
        plan = canonical_plan(tree, grid, model, bindings)
    extra = 0.0
    for node in tree.walk():
        if isinstance(node, PLeaf):
            src = produced.get(node.ref.tensor.name)
            if src is None:
                continue
            dst = plan.gamma[id(node)]
            src_eff = src.effective(node.indices)
            if src_eff != dst:
                extra += model.comm_cost * move_cost_elements(
                    node.indices, src_eff, dst, grid, bindings
                )
    plan.total_cost += extra
    return plan
