"""Data distribution and communication minimization (paper Section 7).

A logical n-dimensional processor grid executes the operator tree one
node at a time (intra-node data parallelism).  Arrays are distributed by
*n-tuples* whose positions name an index variable (that array dimension
is block-distributed along the processor dimension), ``*`` (replicated),
or ``1`` (only processors with coordinate 0 on that dimension hold
data).

Modules:

* :mod:`repro.parallel.grid` -- processor grids and block ranges;
* :mod:`repro.parallel.dist` -- distribution n-tuples, local shapes,
  ownership masks;
* :mod:`repro.parallel.ptree` -- the expression tree with explicit
  multiplication and summation nodes that the Section-7 DP runs on;
* :mod:`repro.parallel.commcost` -- CalcCost / MoveCost / reduction cost
  models (receive-volume semantics, identical to the simulator);
* :mod:`repro.parallel.partition` -- the dynamic-programming algorithm
  of Section 7 (``Cost(v, alpha)`` tables, ``Dist`` backtrace);
* :mod:`repro.parallel.simulate` -- a virtual message-counting processor
  grid that executes the chosen plan with real numpy blocks and verifies
  both numerics and communication volumes.
"""

from repro.parallel.grid import ProcessorGrid, myrange
from repro.parallel.dist import REPLICATED, SINGLE, Distribution
from repro.parallel.ptree import PLeaf, PMul, PNode, PSum, expression_to_ptree
from repro.parallel.commcost import CommModel
from repro.parallel.partition import PartitionPlan, optimize_distribution
from repro.parallel.simulate import GridSimulator, SimulationReport
from repro.parallel.program_plan import SequencePlan, plan_sequence
from repro.parallel.gridsearch import GridChoice, choose_grid, grid_shapes
from repro.parallel.spmd import (
    LocalComm,
    SpmdRun,
    SpmdSequenceRun,
    compile_schedule,
    generate_spmd_source,
    run_spmd,
    run_spmd_sequence,
)

__all__ = [
    "ProcessorGrid",
    "myrange",
    "REPLICATED",
    "SINGLE",
    "Distribution",
    "PLeaf",
    "PMul",
    "PSum",
    "PNode",
    "expression_to_ptree",
    "CommModel",
    "PartitionPlan",
    "optimize_distribution",
    "GridSimulator",
    "SimulationReport",
    "SequencePlan",
    "plan_sequence",
    "GridChoice",
    "choose_grid",
    "grid_shapes",
    "LocalComm",
    "SpmdRun",
    "SpmdSequenceRun",
    "compile_schedule",
    "generate_spmd_source",
    "run_spmd",
    "run_spmd_sequence",
]
