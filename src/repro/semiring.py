"""Pluggable scalar algebras (semirings) for the contraction pipeline.

The paper's framework -- operation minimization, fusion, tiling,
distribution -- never relies on what ``+`` and ``*`` *mean*, only on
the semiring laws: the reduce op is associative and commutative with
identity ``zero``, the combine op is associative with identity ``one``,
combine distributes over reduce, and ``zero`` annihilates combine.
This module makes the algebra a first-class, registered object so the
same synthesized loop structures evaluate shortest paths
(``min_plus``), widest/most-probable paths (``max_plus`` /
``max_times``) and reachability (``or_and``) exactly like ordinary
multilinear contractions (``plus_times``).

Each :class:`Semiring` carries three lowering surfaces:

* **numpy** -- binary ufunc names for combine/reduce (used by the
  interpreter, the engine executor, the sparse hash-join executor and
  the SPMD rank programs);
* **C** -- expression templates and an identity literal (used by
  :mod:`repro.codegen.cgen` when emitting native loop nests; the
  semiring id is part of the nest IR, hence of the artifact key);
* **python-source** -- expression templates that stay inside the
  numba-``njit``-able subset for the numba nest backend.

Scalar coefficients are a ``plus_times`` notion (they come from the
weighted-sum normal form of the expression AST); every non-default
semiring therefore only accepts terms with coefficient ``1`` --
:func:`require_unit_coef` gives the structured error.

Only ``plus_times`` may lower to GEMM; the kernel planner never
classifies GEMM terms under any other algebra, and
:func:`repro.kernels.lowering.lower_binary_term` carries a hard guard.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.robustness.errors import ReproError, SpecError

__all__ = [
    "Semiring",
    "available_semirings",
    "get_semiring",
    "register_semiring",
    "require_unit_coef",
    "semiring_einsum",
    "DEFAULT_SEMIRING",
]

#: name of the classical algebra; the pipeline default everywhere
DEFAULT_SEMIRING = "plus_times"

# python-level scalar ops per ufunc name (interp inner loops run on
# python floats; going through numpy scalars there is ~20x slower)
_PY_OPS: Dict[str, Callable] = {
    "multiply": operator.mul,
    "add": operator.add,
    "minimum": min,
    "maximum": max,
}

# C expression template per ufunc name: (a, b) -> C expression text
_C_OPS: Dict[str, Callable[[str, str], str]] = {
    "multiply": lambda a, b: f"{a} * {b}",
    "add": lambda a, b: f"{a} + {b}",
    "minimum": lambda a, b: f"(({a}) < ({b}) ? ({a}) : ({b}))",
    "maximum": lambda a, b: f"(({a}) > ({b}) ? ({a}) : ({b}))",
}

# python-source expression template per ufunc name (njit-able subset:
# builtins min/max and arithmetic only)
_PY_EXPR: Dict[str, Callable[[str, str], str]] = {
    "multiply": lambda a, b: f"{a} * {b}",
    "add": lambda a, b: f"{a} + {b}",
    "minimum": lambda a, b: f"min({a}, {b})",
    "maximum": lambda a, b: f"max({a}, {b})",
}


@dataclass(frozen=True)
class Semiring:
    """One scalar algebra: (carrier, reduce ``⊕``, combine ``⊗``, 0̄, 1̄).

    ``zero`` is the reduce identity *and* the combine annihilator (the
    value an "absent" entry takes: ``inf`` for ``min_plus`` distances,
    ``0`` for reachability).  ``one`` is the combine identity (the
    self-loop weight graph encodings place on the diagonal).

    ``idempotent`` records ``a ⊕ a = a``; idempotent algebras tolerate
    re-reduction of the same partial result, so recompute-style
    schedules need no zero-init subtleties.

    ``dtypes`` is the advisory carrier constraint -- dtype *kind*
    characters accepted for inputs (``"f"`` float, ``"i"`` int,
    ``"b"`` bool).  Algebras whose ``zero`` is infinite cannot live in
    integer carriers.
    """

    name: str
    zero: float
    one: float
    combine_ufunc: str
    reduce_ufunc: str
    idempotent: bool = False
    dtypes: Tuple[str, ...] = ("f",)
    doc: str = ""

    # -- numpy lowering ------------------------------------------------
    @property
    def np_combine(self) -> np.ufunc:
        """Binary ufunc for ``⊗`` (elementwise combine)."""
        return getattr(np, self.combine_ufunc)

    @property
    def np_reduce(self) -> np.ufunc:
        """Binary ufunc for ``⊕`` (use ``.reduce`` for axis folds)."""
        return getattr(np, self.reduce_ufunc)

    # -- python scalar lowering (interp / sparse inner loops) ----------
    @property
    def py_combine(self) -> Callable:
        return _PY_OPS[self.combine_ufunc]

    @property
    def py_reduce(self) -> Callable:
        return _PY_OPS[self.reduce_ufunc]

    # -- C lowering (native nests) -------------------------------------
    def c_combine(self, a: str, b: str) -> str:
        return _C_OPS[self.combine_ufunc](a, b)

    def c_reduce(self, a: str, b: str) -> str:
        return _C_OPS[self.reduce_ufunc](a, b)

    def c_zero(self, ctype: str) -> str:
        """Identity-element literal for ``ctype`` accumulators."""
        if self.zero == float("inf"):
            return "INFINITY"
        if self.zero == float("-inf"):
            return "-INFINITY"
        return f"({ctype}){self.zero:g}"

    @property
    def c_includes(self) -> Tuple[str, ...]:
        """Extra headers the emitted C needs (``INFINITY`` lives in
        ``math.h``)."""
        if np.isinf(self.zero):
            return ("math.h",)
        return ()

    # -- python-source lowering (numba nests) --------------------------
    def py_expr_combine(self, a: str, b: str) -> str:
        return _PY_EXPR[self.combine_ufunc](a, b)

    def py_expr_reduce(self, a: str, b: str) -> str:
        return _PY_EXPR[self.reduce_ufunc](a, b)

    def py_zero(self) -> str:
        """Identity-element literal for generated python source
        (``math.inf`` is njit-able; ``float('inf')`` is not)."""
        if self.zero == float("inf"):
            return "math.inf"
        if self.zero == float("-inf"):
            return "-math.inf"
        return repr(float(self.zero))

    # -- helpers -------------------------------------------------------
    @property
    def is_default(self) -> bool:
        return self.name == DEFAULT_SEMIRING

    def accepts_dtype(self, dtype) -> bool:
        """Advisory carrier check (kind characters in :attr:`dtypes`)."""
        return np.dtype(dtype).kind in self.dtypes

    def describe(self) -> str:
        return (
            f"{self.name}: reduce={self.reduce_ufunc} "
            f"combine={self.combine_ufunc} zero={self.zero:g} "
            f"one={self.one:g}"
            f"{' (idempotent)' if self.idempotent else ''}"
        )


_REGISTRY: Dict[str, Semiring] = {}


def register_semiring(semiring: Semiring) -> Semiring:
    """Add ``semiring`` to the registry (replacing any same-name entry)."""
    _REGISTRY[semiring.name] = semiring
    return semiring


def available_semirings() -> Tuple[str, ...]:
    """Registered semiring names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring; unknown names raise a structured
    :class:`~repro.robustness.errors.SpecError` listing what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown semiring '{name}' (registered: "
            f"{', '.join(available_semirings())})",
            stage="spec",
        ) from None


def require_unit_coef(coef: float, semiring: Semiring, **context) -> None:
    """Reject scalar coefficients outside ``plus_times``.

    Weighted sums of terms only mean anything when reduce is ``+`` and
    combine is ``*``; under any other algebra a coefficient other than
    ``1`` is a spec error, not something to silently misevaluate.
    """
    if semiring.is_default or coef == 1.0:
        return
    raise ReproError(
        f"scalar coefficient {coef:g} is not expressible in the "
        f"'{semiring.name}' semiring (only coefficient 1 terms are "
        "valid outside plus_times)",
        semiring=semiring.name,
        **context,
    )


register_semiring(Semiring(
    name="plus_times", zero=0.0, one=1.0,
    combine_ufunc="multiply", reduce_ufunc="add",
    idempotent=False, dtypes=("f", "i", "b", "c"),
    doc="classical multilinear algebra (the paper's setting)",
))
register_semiring(Semiring(
    name="min_plus", zero=float("inf"), one=0.0,
    combine_ufunc="add", reduce_ufunc="minimum",
    idempotent=True, dtypes=("f",),
    doc="tropical shortest-path algebra (Bellman-Ford, APSP)",
))
register_semiring(Semiring(
    name="max_plus", zero=float("-inf"), one=0.0,
    combine_ufunc="add", reduce_ufunc="maximum",
    idempotent=True, dtypes=("f",),
    doc="tropical longest/critical-path algebra",
))
register_semiring(Semiring(
    name="max_times", zero=0.0, one=1.0,
    combine_ufunc="multiply", reduce_ufunc="maximum",
    idempotent=True, dtypes=("f", "i", "b"),
    doc="Viterbi algebra over non-negative weights (path reliability)",
))
register_semiring(Semiring(
    name="or_and", zero=0.0, one=1.0,
    combine_ufunc="multiply", reduce_ufunc="maximum",
    idempotent=True, dtypes=("f", "i", "b"),
    doc="boolean reachability algebra on 0/1 carriers",
))


def semiring_einsum(
    spec: str,
    *operands: np.ndarray,
    semiring: Semiring,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evaluate one einsum-style contraction under ``semiring``.

    The generic dense path behind every executor when the algebra is
    not ``plus_times``: broadcast the operands into the joint index
    space, fold them together with the combine ufunc, then collapse
    the contracted axes with ``reduce.reduce``.  Repeated letters
    within one operand are diagonal *extractions* (no arithmetic), so
    they are peeled off with a plain einsum view first.

    Memory is the full joint space -- proportional to the loop-nest
    volume, which is exactly what the synthesized tiled structures are
    sized around; this path is meant for the per-term tile/kernel
    granularity, not whole unfused multi-index contractions.
    """
    ins, _, outsub = spec.partition("->")
    subs = [s for s in ins.split(",")]
    if len(subs) != len(operands):
        raise ValueError(f"spec {spec!r} does not match {len(operands)} operands")
    ops = []
    for sub, op in zip(subs, operands):
        uniq = ""
        for ch in sub:
            if ch not in uniq:
                uniq += ch
        if uniq != sub:
            op = np.einsum(f"{sub}->{uniq}", op)
        ops.append((uniq, np.asarray(op)))
    letters = list(outsub)
    for sub, _ in ops:
        for ch in sub:
            if ch not in letters:
                letters.append(ch)
    axis_of = {ch: k for k, ch in enumerate(letters)}
    extents = {ch: 1 for ch in letters}
    for sub, op in ops:
        for ch, n in zip(sub, op.shape):
            extents[ch] = n
    joint_shape = tuple(extents[ch] for ch in letters)
    out_shape = tuple(extents[ch] for ch in outsub)
    red_axes = tuple(range(len(outsub), len(letters)))
    if 0 in joint_shape:
        # empty contracted extent: pure identity fill (reduce of nothing)
        res = np.full(out_shape, semiring.zero)
    else:
        joint = None
        for sub, op in ops:
            order = sorted(range(len(sub)), key=lambda k: axis_of[sub[k]])
            view = op.transpose(order)
            shape = [1] * len(letters)
            for ch in sub:
                shape[axis_of[ch]] = extents[ch]
            view = view.reshape(shape)
            joint = view if joint is None else semiring.np_combine(joint, view)
        if joint.shape != joint_shape:
            joint = np.broadcast_to(joint, joint_shape)
        if red_axes:
            res = semiring.np_reduce.reduce(joint, axis=red_axes)
        else:
            res = np.array(joint)
    if out is not None:
        np.copyto(out, res)
        return out
    return res
