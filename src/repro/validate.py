"""Cross-validation helpers.

``verify_result`` runs a synthesis result through all three execution
paths -- the reference einsum executor on the original program, the
counting interpreter on the synthesized loop structure, and the
generated Python kernel -- and compares every produced output.  It is
the programmatic form of the guarantee the test suite enforces, exposed
for downstream users who synthesize their own programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.engine.counters import Counters
from repro.engine.executor import random_inputs, run_statements
from repro.pipeline import SynthesisResult


@dataclass
class VerificationReport:
    """Outcome of a three-way cross-validation."""

    outputs: Dict[str, float] = field(default_factory=dict)  # max abs error
    counters: Counters = field(default_factory=Counters)
    max_error: float = 0.0
    ok: bool = True

    def __str__(self) -> str:
        status = "OK" if self.ok else "MISMATCH"
        return (
            f"verification {status}: max |error| = {self.max_error:.3e} over "
            f"{len(self.outputs)} output(s); measured "
            f"{self.counters.total_ops:,} ops"
        )


def verify_result(
    result: SynthesisResult,
    inputs: Optional[Mapping[str, np.ndarray]] = None,
    functions: Optional[Mapping[str, Callable]] = None,
    seed: int = 0,
    rtol: float = 1e-8,
) -> VerificationReport:
    """Cross-validate a synthesis result on (random) inputs.

    Compares, for every program output: reference (einsum over the
    original statements) vs interpreter (synthesized structure) vs
    compiled kernel.  Raises nothing; inspect ``report.ok``.
    """
    program = result.program
    if inputs is None:
        inputs = random_inputs(program, result.config.bindings, seed=seed)

    reference = run_statements(
        program.statements, inputs, result.config.bindings, functions
    )
    counters = Counters()
    interp_env = result.execute(inputs, functions, counters)
    kernel = result.compile()
    compiled_env = kernel(inputs, functions or {})

    # only true outputs are comparable: intermediates consumed by later
    # statements may have been dimension-reduced (fused) or tiled away
    consumed = {
        ref.tensor.name
        for stmt in program.statements
        for ref in stmt.expr.refs()
    }
    outputs = [
        stmt
        for stmt in program.statements
        if stmt.result.name not in consumed
    ]

    report = VerificationReport(counters=counters)
    for stmt in outputs:
        name = stmt.result.name
        want = np.asarray(reference[name])
        scale = max(1.0, float(np.max(np.abs(want))))
        for env in (interp_env, compiled_env):
            got = np.asarray(env[name])
            err = float(np.max(np.abs(got - want))) if want.size else 0.0
            report.outputs[name] = max(report.outputs.get(name, 0.0), err)
            report.max_error = max(report.max_error, err)
            if err > rtol * scale:
                report.ok = False
    return report
