"""Plain-text report formatting for the synthesis pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence


@dataclass
class StageReport:
    """Outcome of one pipeline stage (paper Fig. 5 box)."""

    name: str
    details: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.name} =="]
        width = max((len(k) for k in self.details), default=0)
        for key, value in self.details.items():
            if isinstance(value, float):
                value = f"{value:,.1f}"
            elif isinstance(value, bool):
                value = str(value).lower()
            elif isinstance(value, int):
                value = f"{value:,}"
            elif isinstance(value, Mapping):
                value = (
                    "{" + ", ".join(
                        f"{k}={v:,}"
                        if isinstance(v, int) and not isinstance(v, bool)
                        else f"{k}={v}"
                        for k, v in sorted(
                            value.items(), key=lambda kv: str(kv[0])
                        )
                    ) + "}"
                ) if value else "{}"
            lines.append(f"  {key.ljust(width)} : {value}")
        for note in self.notes:
            lines.append(f"  - {note}")
        return "\n".join(lines)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table used by benchmarks and examples."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                f"{v:,}" if isinstance(v, int) else
                f"{v:,.2f}" if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    out = []
    for k, row in enumerate(cells):
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if k == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)
