"""The shared two-tier (memory LRU + on-disk) content-addressed store.

:class:`~repro.runtime.plan_cache.PlanCache` and
:class:`~repro.autotune.db.TuningDB` keep the same storage shape: a
bounded in-memory LRU of serialized blobs over an optional persistent
directory of one file per content-addressed key.  :class:`TwoTierStore`
is that shape, extracted once, so both wrappers only decide *what* a
blob means (pickle vs canonical JSON, signature validation) while the
mechanics live here:

* **LRU memory tier** -- blobs keyed by hex digest, least recently used
  entries evicted beyond ``maxsize``; hits refresh recency.
* **Sharded disk tier** -- keys fan out into ``directory/<key[:2]>/``
  subdirectories (256-way), so a serving deployment writing tens of
  thousands of plans never piles them into one directory.  Legacy flat
  files (pre-sharding layouts) are still found on read.
* **Atomic, locked publication** -- a writer stakes a ``<key>.lock``
  file with ``O_EXCL``, writes a temporary file, and ``os.replace``\\ s
  it over the canonical path, so concurrent server workers and CLI
  processes can share one directory without torn or duplicated writes.
  Because keys are content-addressed, a writer that loses the lock race
  simply skips publication: the winner is writing identical bytes.
  Locks abandoned by a crashed writer are broken after
  ``lock_timeout_s``.
* **Corruption discipline** -- unreadable or undecodable disk entries
  are removed and read as misses; an optional ``validate`` hook lets
  the wrapper reject decoded-but-stale records (counted separately).

All operations are thread-safe: the serving layer synthesizes in
executor threads that share one store.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

__all__ = ["TwoTierStore", "SHARD_CHARS"]

#: leading hex digits of the key that name the fan-out subdirectory
SHARD_CHARS = 2


class TwoTierStore:
    """Bounded in-memory LRU over an optional sharded disk directory.

    ``suffix`` names the entry files (``<key><suffix>``); ``decode``
    callbacks passed to :meth:`get` turn stored bytes back into values.
    Counters (``hits``/``memory_hits``/``disk_hits``/``misses``/
    ``stale``/``evictions``) accumulate across the store's lifetime and
    are snapshotted by :meth:`stats`.
    """

    def __init__(
        self,
        maxsize: int = 128,
        directory: Optional[str] = None,
        suffix: str = ".bin",
        *,
        lock_timeout_s: float = 60.0,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.directory = directory
        self.suffix = suffix
        self.lock_timeout_s = lock_timeout_s
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- paths -------------------------------------------------------------

    def path(self, key: str) -> str:
        """Canonical (sharded) disk path of ``key``."""
        return os.path.join(
            self.directory, key[:SHARD_CHARS], f"{key}{self.suffix}"
        )

    def _legacy_path(self, key: str) -> str:
        """Pre-sharding flat path, still honoured on read."""
        return os.path.join(self.directory, f"{key}{self.suffix}")

    # -- read path ---------------------------------------------------------

    def get(
        self,
        key: str,
        decode: Optional[Callable[[bytes], object]] = None,
        validate: Optional[Callable[[object], bool]] = None,
    ) -> Optional[Tuple[object, str]]:
        """``(value, tier)`` for a stored key, else ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``.  ``decode`` maps stored
        bytes to the returned value (identity when omitted); a disk blob
        whose decode raises is treated as corrupt, removed, and counted
        as a miss.  ``validate`` inspects the decoded value: entries it
        rejects are dropped from their tier and counted ``stale``.
        """
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                value = blob if decode is None else decode(blob)
                if validate is not None and not validate(value):
                    del self._memory[key]
                    self.stale += 1
                    self.misses += 1
                    return None
                self._memory.move_to_end(key)
                self.hits += 1
                self.memory_hits += 1
                return value, "memory"
            if self.directory is not None:
                found = self._read_disk(key, decode, validate)
                if found is not None:
                    return found
            self.misses += 1
            return None

    def _read_disk(self, key, decode, validate):
        """One disk probe under the lock; counts its own hit/stale."""
        for path in (self.path(key), self._legacy_path(key)):
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except FileNotFoundError:
                continue
            except OSError:
                self._remove_file(path)
                continue
            try:
                value = blob if decode is None else decode(blob)
            except Exception:
                # corrupt entry: drop it and treat as a miss
                self._remove_file(path)
                continue
            if validate is not None and not validate(value):
                self.stale += 1
                self._remove_file(path)
                continue
            self._store_memory(key, blob)
            self.hits += 1
            self.disk_hits += 1
            return value, "disk"
        return None

    @staticmethod
    def _remove_file(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    # -- write path --------------------------------------------------------

    def put(self, key: str, blob: bytes) -> None:
        """Store serialized ``blob`` under ``key`` in both tiers."""
        with self._lock:
            self._store_memory(key, blob)
        if self.directory is not None:
            self._publish(key, blob)

    def _store_memory(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions += 1

    def _publish(self, key: str, blob: bytes) -> bool:
        """Atomically write the disk entry; ``False`` when another
        writer holds the key's lock (their bytes are identical -- keys
        are content-addressed -- so skipping is correct)."""
        path = self.path(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
        except OSError:  # pragma: no cover - permissions/disk full
            return False
        lock = os.path.join(shard, f"{key}.lock")
        for attempt in (0, 1):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt or not self._break_stale_lock(lock):
                    return False
                continue
            except OSError:  # pragma: no cover - defensive
                return False
            os.close(fd)
            try:
                tmp_fd, tmp = tempfile.mkstemp(
                    dir=shard, suffix=f"{self.suffix}.tmp"
                )
                try:
                    with os.fdopen(tmp_fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp, path)
                except OSError:  # pragma: no cover - disk full etc.
                    self._remove_file(tmp)
                    return False
            finally:
                self._remove_file(lock)
            return True
        return False  # pragma: no cover - loop always returns

    def _break_stale_lock(self, lock: str) -> bool:
        """Remove a lock left behind by a crashed writer; ``True`` when
        the caller should retry acquisition."""
        try:
            age = time.time() - os.path.getmtime(lock)
        except OSError:
            return True  # lock vanished: the other writer finished
        if age < self.lock_timeout_s:
            return False  # live writer: let it win
        self._remove_file(lock)
        return True

    # -- maintenance -------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``)."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None:
            for dirpath, _, files in os.walk(self.directory):
                for entry in files:
                    if entry.endswith(self.suffix):
                        self._remove_file(os.path.join(dirpath, entry))

    def stats(self) -> Dict[str, int]:
        """Snapshot of the store's counters and occupancy."""
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "stale": self.stale,
                "evictions": self.evictions,
            }

    def describe(self, name: str = "TwoTierStore") -> str:
        tiers = f"memory[{len(self._memory)}/{self.maxsize}]"
        if self.directory is not None:
            tiers += f" + disk[{self.directory}]"
        return (
            f"{name}({tiers}): {self.hits} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses, {self.evictions} evictions"
        )
