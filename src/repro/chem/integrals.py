"""Synthetic two-electron integral evaluations.

The paper's ``f1``/``f2`` compute antisymmetrized integrals
``<cb||ek>`` at a cost :math:`C_i` of hundreds to a few thousand
arithmetic operations per element.  We cannot evaluate real Gaussian
integrals here (and do not need to: only the *cost* and determinism
matter for the optimization framework), so this module provides a
deterministic pseudo-random stand-in:

* values are a hash-style mix of the integer coordinates, reproducible
  across calls and vectorizable over numpy index grids;
* the *declared* cost ``C_i`` is carried by the function tensor and is
  charged by every cost model and counter; the Python implementation
  itself is O(1).

This is the substitution documented in DESIGN.md: the framework's
space-time trade-offs depend only on the ratio of :math:`C_i` to
contraction work, which is preserved exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

#: Mixing constants (shader-style hash; any irrational-ish values work).
_WEIGHTS = (12.9898, 78.233, 37.719, 93.989, 26.651, 61.417)


def make_integral(name: str, seed: int = 0) -> Callable[..., np.ndarray]:
    """A deterministic integral-value function of integer coordinates.

    Works elementwise on scalars and broadcasts over numpy arrays, so it
    serves both the reference executor (grid evaluation) and the loop
    interpreter (scalar calls).  Values lie in (-1, 1).
    """
    offset = (hash(name) % 1000) * 0.017 + seed * 0.31

    def integral(*coords) -> np.ndarray:
        acc = offset
        for k, c in enumerate(coords):
            acc = acc + np.asarray(c, dtype=np.float64) * _WEIGHTS[k % len(_WEIGHTS)]
        value = np.sin(acc) * 43758.5453
        return value - np.floor(value) - 0.5

    integral.__name__ = f"integral_{name}"
    return integral


def integral_table(names: Sequence[str], seed: int = 0) -> Dict[str, Callable]:
    """Implementations for several integral functions."""
    return {name: make_integral(name, seed) for name in names}
