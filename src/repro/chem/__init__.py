"""Quantum-chemistry workloads from the paper.

* :mod:`repro.chem.integrals` -- deterministic synthetic stand-ins for
  the two-electron integral computations ``f1``, ``f2`` (cost
  :math:`C_i` each);
* :mod:`repro.chem.a3a` -- the CCSD(T) A3A energy component of paper
  Section 3 with the analytic space/time tables of Figs. 2-4;
* :mod:`repro.chem.workloads` -- additional representative contraction
  sets (the Section-2 example, coupled-cluster-like multi-term sums).
"""

from repro.chem.integrals import make_integral, integral_table
from repro.chem.a3a import (
    A3AProblem,
    a3a_problem,
    fig2_structure,
    fig3_structure,
    fig4_structure,
    fig2_table,
    fig3_table,
    fig4_table,
)
from repro.chem.workloads import (
    ccsd_doubles_program,
    ccsd_like_program,
    fig1_formula_sequence,
    fig1_program,
    polarizability_like_program,
    random_contraction_program,
)
from repro.chem.a3a_full import A3AFull, a3a_full_problem

__all__ = [
    "make_integral",
    "integral_table",
    "A3AProblem",
    "a3a_problem",
    "fig2_structure",
    "fig3_structure",
    "fig4_structure",
    "fig2_table",
    "fig3_table",
    "fig4_table",
    "fig1_program",
    "fig1_formula_sequence",
    "ccsd_like_program",
    "ccsd_doubles_program",
    "polarizability_like_program",
    "random_contraction_program",
    "A3AFull",
    "a3a_full_problem",
]
