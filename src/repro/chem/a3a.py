"""The CCSD(T) A3A energy component (paper Section 3, Figs. 2-4).

The computation::

    X[a,e,c,f] = sum(i,j) T[i,j,a,e] * T[i,j,c,f]
    T1[c,e,b,k] = f1(c,e,b,k)          # integral, cost C_i per element
    T2[a,f,b,k] = f2(a,f,b,k)          # integral, cost C_i per element
    Y[c,e,a,f]  = sum(b,k) T1[c,e,b,k] * T2[a,f,b,k]
    E           = sum(a,e,c,f) X[a,e,c,f] * Y[c,e,a,f]

Three implementations from the paper:

* :func:`fig2_structure` -- unfused operation-minimal form (maximal
  memory, maximal integral reuse);
* :func:`fig3_structure` -- fully fused with redundant computation
  (scalar temporaries, integrals recomputed :math:`V^2`-fold);
* :func:`fig4_structure` -- tiled partial fusion with block size ``B``
  (the space-time compromise).

``fig2_table``/``fig3_table``/``fig4_table`` give the corresponding
space/time tables with exact operation counts under this repository's
cost conventions (2 ops per multiply-accumulate; the paper's tables drop
constant factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.expr.ast import Program, Statement
from repro.expr.indices import Index
from repro.expr.parser import parse_program
from repro.chem.integrals import integral_table
from repro.codegen.builder import apply_tiling, build_fused, build_unfused
from repro.codegen.loops import Block
from repro.fusion.memopt import FusionDecision, FusionResult
from repro.fusion.tree import CompNode, build_tree

_A3A_TEMPLATE = """
range V = {V};
range O = {O};
index a, b, c, e, f : V;
index i, j, k : O;
tensor T(i, j, a, e);
function f1(c, e, b, k) cost {Ci};
function f2(a, f, b, k) cost {Ci};
X(a, e, c, f) = sum(i, j) T(i,j,a,e) * T(i,j,c,f);
T1(c, e, b, k) = f1(c, e, b, k);
T2(a, f, b, k) = f2(a, f, b, k);
Y(c, e, a, f) = sum(b, k) T1(c,e,b,k) * T2(a,f,b,k);
E() = sum(a, e, c, f) X(a,e,c,f) * Y(c,e,a,f);
"""


@dataclass
class A3AProblem:
    """The A3A computation with its sizes and integral implementations."""

    V: int
    O: int
    Ci: int
    program: Program
    functions: Dict[str, Callable] = field(default_factory=dict)

    @property
    def statements(self) -> Tuple[Statement, ...]:
        return self.program.statements

    def index(self, name: str) -> Index:
        for stmt in self.statements:
            for i in stmt.expr.free:
                if i.name == name:
                    return i
            for ref in stmt.expr.refs():
                for i in ref.indices:
                    if i.name == name:
                        return i
        raise KeyError(name)

    def tree(self) -> CompNode:
        return build_tree(self.statements)


def a3a_problem(V: int = 3000, O: int = 100, Ci: int = 1000) -> A3AProblem:
    """Build the A3A problem at the given sizes (defaults: paper scale)."""
    src = _A3A_TEMPLATE.format(V=V, O=O, Ci=Ci)
    program = parse_program(src)
    return A3AProblem(V, O, Ci, program, integral_table(["f1", "f2"]))


# ---------------------------------------------------------------------------
# the three structures
# ---------------------------------------------------------------------------

def fig2_structure(problem: A3AProblem) -> Block:
    """Unfused operation-minimal form (paper Fig. 2)."""
    return build_unfused(problem.statements)


def _decisions(
    problem: A3AProblem,
    seqs: Mapping[str, Tuple[str, ...]],
    orders: Mapping[str, Tuple[str, ...]],
) -> FusionResult:
    """Build a FusionResult from per-array fusion sequences / loop orders
    given as index-name tuples."""
    root = problem.tree()
    ix = problem.index
    decisions: Dict[int, FusionDecision] = {}

    def visit(node: CompNode) -> None:
        name = node.array.name
        pseq = tuple(ix(n) for n in seqs.get(name, ()))
        child_seqs = tuple(
            tuple(ix(n) for n in seqs.get(c.array.name, ()))
            if not c.is_leaf
            else ()
            for c in node.children
        )
        order = tuple(ix(n) for n in orders.get(name, ()))
        if not order:
            rest = tuple(sorted(set(node.loop_indices) - set(pseq)))
            order = pseq + rest
        decisions[id(node)] = FusionDecision(node, pseq, child_seqs, order)
        for child in node.children:
            visit(child)

    visit(root)
    from repro.fusion.memopt import reduced_size

    total = 0
    for dec in decisions.values():
        node = dec.node
        if node.is_leaf or node is root:
            continue
        total += reduced_size(node.array.indices, dec.parent_fusion)
    return FusionResult(root, total, decisions)


def fig3_structure(problem: A3AProblem) -> Block:
    """Fully fused form with redundant computation (paper Fig. 3).

    All temporaries become scalars; the integral evaluations lose all
    reuse (T1 recomputed for every (a, f), T2 for every (c, e))."""
    seqs = {
        "X": ("a", "e", "c", "f"),
        "Y": ("a", "e", "c", "f"),
        "T1": ("a", "e", "c", "f", "b", "k"),
        "T2": ("a", "e", "c", "f", "b", "k"),
    }
    orders = {
        "E": ("a", "e", "c", "f"),
        "X": ("a", "e", "c", "f", "i", "j"),
        "Y": ("a", "e", "c", "f", "b", "k"),
        "T1": ("a", "e", "c", "f", "b", "k"),
        "T2": ("a", "e", "c", "f", "b", "k"),
    }
    return build_fused(_decisions(problem, seqs, orders))


def fig4_structure(problem: A3AProblem, B: int) -> Block:
    """Tiled partial fusion with block size ``B`` (paper Fig. 4).

    The underlying fusion keeps X and Y as full arrays while fusing the
    integral producers into Y's (b, k) loops; tiling the a, e, c, f
    loops then shrinks X and Y to :math:`B^4` blocks and T1/T2 to
    :math:`B^2` blocks, recomputing integrals once per tile pair."""
    seqs = {
        "X": (),
        "Y": (),
        "T1": ("b", "k"),
        "T2": ("b", "k"),
    }
    orders = {
        "E": ("a", "e", "c", "f"),
        "X": ("a", "e", "c", "f", "i", "j"),
        "Y": ("b", "k", "c", "e", "a", "f"),
        "T1": ("b", "k", "c", "e"),
        "T2": ("b", "k", "a", "f"),
    }
    fused = build_fused(_decisions(problem, seqs, orders))
    tiles = {problem.index(n): B for n in ("a", "e", "c", "f")}
    return apply_tiling(fused, tiles, keep_global=["E"])


# ---------------------------------------------------------------------------
# analytic space/time tables
# ---------------------------------------------------------------------------

def fig2_table(V: int, O: int, Ci: int) -> Dict[str, Dict[str, int]]:
    """Exact space (elements) and time (ops) of the unfused form.

    Paper's order-of-magnitude column in comments."""
    return {
        "X": {"space": V**4, "time": 2 * V**4 * O**2},   # V^4, V^4 O^2
        "T1": {"space": V**3 * O, "time": Ci * V**3 * O},  # V^3 O, Ci V^3 O
        "T2": {"space": V**3 * O, "time": Ci * V**3 * O},
        "Y": {"space": V**4, "time": 2 * V**5 * O},       # V^4, V^5 O
        "E": {"space": 1, "time": 2 * V**4},              # 1, V^4
    }


def fig3_table(V: int, O: int, Ci: int) -> Dict[str, Dict[str, int]]:
    """Fully-fused form: all scalars, integrals recomputed V^2-fold."""
    return {
        "X": {"space": 1, "time": 2 * V**4 * O**2},
        "T1": {"space": 1, "time": Ci * V**5 * O},
        "T2": {"space": 1, "time": Ci * V**5 * O},
        "Y": {"space": 1, "time": 2 * V**5 * O},
        "E": {"space": 1, "time": 2 * V**4},
    }


def fig4_table(V: int, O: int, Ci: int, B: int) -> Dict[str, Dict[str, int]]:
    """Tiled form at block size ``B`` (requires ``B | V`` for exactness)."""
    if V % B != 0:
        raise ValueError("fig4_table requires B to divide V")
    t = V // B
    return {
        "X": {"space": B**4, "time": 2 * V**4 * O**2},
        "T1": {"space": B**2, "time": Ci * t**2 * V**3 * O},
        "T2": {"space": B**2, "time": Ci * t**2 * V**3 * O},
        "Y": {"space": B**4, "time": 2 * V**5 * O},
        "E": {"space": 1, "time": 2 * V**4},
    }


def table_totals(table: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    """Aggregate space/time of a per-array table (space excludes E's
    output slot only if desired by the caller)."""
    return {
        "space": sum(row["space"] for row in table.values()),
        "time": sum(row["time"] for row in table.values()),
    }
