"""Representative tensor-contraction workloads.

* :func:`fig1_program` -- the Section-2 four-tensor contraction
  ``S_abij = sum A*B*C*D`` with separate V/O ranges;
* :func:`fig1_formula_sequence` -- its paper-given BDCA factorization
  (Fig. 1(a));
* :func:`ccsd_like_program` -- a small multi-term coupled-cluster-style
  residual with shared sub-contractions, exercising CSE and multi-term
  optimization;
* :func:`random_contraction_program` -- reproducible random workloads
  for stress tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.expr.ast import Program
from repro.expr.parser import parse_program


def fig1_program(V: int = 3000, O: int = 100) -> Program:
    """The paper's Section-2 example (single statement, 4 tensors)."""
    return parse_program(f"""
    range V = {V};
    range O = {O};
    index a, b, c, d, e, f : V;
    index i, j, k, l : O;
    tensor A(a, c, i, k); tensor B(b, e, f, l);
    tensor C(d, f, j, k); tensor D(c, d, e, l);
    S(a, b, i, j) = sum(c, d, e, f, k, l)
        A(a,c,i,k) * B(b,e,f,l) * C(d,f,j,k) * D(c,d,e,l);
    """)


def fig1_formula_sequence(V: int = 3000, O: int = 100) -> Program:
    """The operation-reduced BDCA formula sequence (paper Fig. 1(a))."""
    return parse_program(f"""
    range V = {V};
    range O = {O};
    index a, b, c, d, e, f : V;
    index i, j, k, l : O;
    tensor A(a, c, i, k); tensor B(b, e, f, l);
    tensor C(d, f, j, k); tensor D(c, d, e, l);
    T1(b, c, d, f) = sum(e, l) B(b,e,f,l) * D(c,d,e,l);
    T2(b, c, j, k) = sum(d, f) T1(b,c,d,f) * C(d,f,j,k);
    S(a, b, i, j) = sum(c, k) T2(b,c,j,k) * A(a,c,i,k);
    """)


def ccsd_like_program(V: int = 40, O: int = 10) -> Program:
    """A compact multi-term residual in the style of CCSD equations.

    Two terms share the intermediate ``sum(e) F(a,e)*T2x(e,b,i,j)``-like
    shape after canonicalization, exercising cross-term CSE; a third
    brings a 3-tensor chain."""
    return parse_program(f"""
    range V = {V};
    range O = {O};
    index a, b, c, e, f : V;
    index i, j, m, n : O;
    tensor F(a, e);
    tensor W(m, n, i, j);
    tensor T2x(e, b, i, j);
    tensor T2y(a, b, m, n);
    tensor G(a, e);
    R(a, b, i, j) = sum(e) F(a,e) * T2x(e,b,i,j)
                  + sum(e) G(a,e) * T2x(e,b,i,j)
                  + sum(m, n) W(m,n,i,j) * T2y(a,b,m,n);
    """)


def ccsd_doubles_program(V: int = 20, O: int = 6) -> Program:
    """A CCSD-doubles-style residual block: five contributions to one
    residual tensor, mixing 2- and 4-index intermediates, particle and
    hole ladders, and a quadratic T2*T2 term.

    This is the stress workload for the whole pipeline: multi-term
    optimization, CSE, a forest of computation trees (shared
    intermediates), and per-statement distribution planning.
    """
    return parse_program(f"""
    range V = {V};
    range O = {O};
    index a, b, c, d, e : V;
    index i, j, k, l, m : O;
    tensor Fae(a, e);
    tensor Fmi(m, i);
    tensor T2(a, b, i, j);
    tensor Wabef(a, b, e, d);
    tensor Wmnij(m, l, i, j);
    tensor Vmnef(m, l, e, d);
    R(a, b, i, j) = sum(e) Fae(a, e) * T2(e, b, i, j)
                  - sum(m) Fmi(m, i) * T2(a, b, m, j)
                  + sum(e, d) Wabef(a, b, e, d) * T2(e, d, i, j)
                  + sum(m, l) Wmnij(m, l, i, j) * T2(a, b, m, l)
                  + sum(m, l, e, d) Vmnef(m, l, e, d) * T2(a, e, i, m)
                                  * T2(d, b, l, j);
    """)


def polarizability_like_program(Nv: int = 24, Nc: int = 12, Ng: int = 16) -> Program:
    """A solid-state-physics-flavoured workload (the paper's intro also
    motivates "computational physics codes modeling electronic
    properties of semiconductors and metals").

    Independent-particle polarizability-like object: matrix elements
    ``M[g, v, c]`` between valence (v) and conduction (c) states on a
    plane-wave-like basis (g), energy denominators ``D[v, c]``, and the
    response ``Chi[g, gp] = sum_{v,c} M[g,v,c] D[v,c] M[gp,v,c]`` --
    a three-factor contraction whose optimal evaluation hinges on
    absorbing the diagonal ``D`` into one matrix-element factor first.
    """
    return parse_program(f"""
    range G = {Ng};
    range VAL = {Nv};
    range CON = {Nc};
    index g, gp : G;
    index v : VAL;
    index c : CON;
    tensor M(g, v, c);
    tensor D(v, c);
    Chi(g, gp) = sum(v, c) M(g, v, c) * D(v, c) * M(gp, v, c);
    """)


def random_contraction_program(
    seed: int,
    n_tensors: int = 4,
    n_indices: int = 6,
    extents: Sequence[int] = (4, 6, 8),
) -> Program:
    """A reproducible random single-term contraction program."""
    rng = random.Random(seed)
    names = [f"x{k}" for k in range(n_indices)]
    lines = []
    for k, name in enumerate(names):
        ext = rng.choice(list(extents))
        lines.append(f"range R{k} = {ext};")
        lines.append(f"index {name} : R{k};")
    refs = []
    used = set()
    for t in range(n_tensors):
        dims = rng.randint(1, min(3, n_indices))
        chosen = rng.sample(names, dims)
        used.update(chosen)
        lines.append(f"tensor T{t}({', '.join(chosen)});")
        refs.append(f"T{t}({','.join(chosen)})")
    used = sorted(used)
    n_out = rng.randint(1, max(1, len(used) - 1))
    out = rng.sample(used, n_out)
    sums = [n for n in used if n not in out]
    rhs = " * ".join(refs)
    if sums:
        lines.append(f"S({', '.join(out)}) = sum({', '.join(sums)}) {rhs};")
    else:
        lines.append(f"S({', '.join(out)}) = {rhs};")
    return parse_program("\n".join(lines))
