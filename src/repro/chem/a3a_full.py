"""The full six-term A3A energy expression (paper Section 3).

The paper's A3A contribution is a sum of six spin cases::

    A3A = X_{ce,af} Y_{ae,cf} + X_{ae',cf'} Y_{ce',af'} + ...

with ``X_{ae,cf} = t_ij^{ae} t_ij^{cf}`` (amplitude contractions over
occupied i, j) and ``Y_{ce,af} = <cb||ek><ab||fk>`` (integral
contractions over b, k).  Up-spin and down-spin (barred) orbitals have
different counts, so the expression mixes two virtual ranges.

We reproduce that *structure* faithfully -- six 4-factor terms over two
virtual ranges (VA: alpha, VB: beta), three distinct X spin blocks each
consumed by two terms, antisymmetrized integrals expressed in the
high-level language as ``g(p,q,r,s) - g(p,q,s,r)`` over primitive
integral functions of cost C_i -- without claiming the exact CCSD spin
algebra (the optimization framework only sees index structure and
costs; see DESIGN.md).

This workload exercises: multi-term operation minimization, cross-term
CSE (each X block must be materialized once, not twice), function
tensors, antisymmetrization, and mixed index ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.expr.ast import Program
from repro.expr.parser import parse_program
from repro.chem.integrals import integral_table


_TEMPLATE = """
range VA = {VA};
range VB = {VB};
range O  = {O};
index a, c, e, f, b : VA;
index ab, cb, eb, fb, bb : VB;
index i, j, k : O;

# cluster amplitudes by spin block
tensor taa(i, j, a, e);
tensor tab(i, j, a, eb);
tensor tbb(i, j, ab, eb);

# primitive integral evaluations (cost C_i each)
function gaa(c, b, e, k) cost {Ci};
function gab(c, b, eb, k) cost {Ci};
function gbb(cb, bb, eb, k) cost {Ci};

# antisymmetrized two-electron integrals <pq||rs> = <pq|rs> - <pq|sr>
Waa(c, b, e, k) = gaa(c, b, e, k) - gaa(e, b, c, k);
Wab(c, b, eb, k) = gab(c, b, eb, k);
Wbb(cb, bb, eb, k) = gbb(cb, bb, eb, k) - gbb(eb, bb, cb, k);

# the six spin cases: three X blocks, each consumed by two terms
E() =
    sum(a, e, c, f, i, j, b, k)
        taa(i,j,c,e) * taa(i,j,a,f) * Waa(a,b,e,k) * Waa(c,b,f,k)
  + sum(a, e, c, f, i, j, b, k)
        taa(i,j,c,e) * taa(i,j,a,f) * Waa(c,b,e,k) * Waa(a,b,f,k)
  + sum(a, eb, c, fb, i, j, b, k)
        tab(i,j,c,eb) * tab(i,j,a,fb) * Wab(a,b,eb,k) * Wab(c,b,fb,k)
  + sum(a, eb, c, fb, i, j, b, k)
        tab(i,j,c,eb) * tab(i,j,a,fb) * Wab(c,b,eb,k) * Wab(a,b,fb,k)
  + sum(ab, eb, cb, fb, i, j, bb, k)
        tbb(i,j,cb,eb) * tbb(i,j,ab,fb) * Wbb(ab,bb,eb,k) * Wbb(cb,bb,fb,k)
  + sum(ab, eb, cb, fb, i, j, bb, k)
        tbb(i,j,cb,eb) * tbb(i,j,ab,fb) * Wbb(cb,bb,eb,k) * Wbb(ab,bb,fb,k);
"""


@dataclass
class A3AFull:
    """The six-term A3A workload."""

    VA: int
    VB: int
    O: int
    Ci: int
    program: Program
    functions: Dict[str, Callable]


def a3a_full_problem(
    VA: int = 4, VB: int = 3, O: int = 2, Ci: int = 50
) -> A3AFull:
    """Build the six-term A3A at the given sizes.

    Defaults are execution-friendly; pass VA=3000, VB=2800, O=100,
    Ci=1000 for paper-scale analysis.
    """
    src = _TEMPLATE.format(VA=VA, VB=VB, O=O, Ci=Ci)
    program = parse_program(src)
    return A3AFull(
        VA, VB, O, Ci, program, integral_table(["gaa", "gab", "gbb"])
    )
