"""Statement scheduling for peak live memory.

A formula sequence fixes *what* temporaries exist; the order of
statements decides *how many are live at once*.  A temporary is live
from its defining statement to its last use; the peak of summed live
sizes is the footprint the unfused execution actually needs (the fusion
stage then shrinks individual arrays, but scheduling is free and
composes with it).

``schedule_statements`` reorders a sequence, respecting data
dependences, to minimize peak live memory:

* exact branch-and-bound over topological orders for small sequences;
* a greedy best-next heuristic (choose the ready statement minimizing
  the resulting live set, preferring statements that free operands)
  beyond the exact threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.expr.ast import Statement
from repro.expr.indices import Bindings, total_extent


@dataclass
class ScheduleResult:
    """A reordered sequence with its memory profile."""

    statements: List[Statement]
    peak_live: int
    baseline_peak: int
    exact: bool

    @property
    def improvement(self) -> float:
        if self.peak_live == 0:
            return 1.0
        return self.baseline_peak / self.peak_live


def _analyze(
    statements: Sequence[Statement],
    bindings: Optional[Bindings],
) -> Tuple[List[Set[int]], List[int], Dict[str, int]]:
    """(dependences, sizes, last_use) of a sequence.

    dependences[k] = indices of statements k reads from; sizes[k] =
    elements of k's result; produced name -> defining statement index.
    """
    producer: Dict[str, int] = {}
    deps: List[Set[int]] = []
    sizes: List[int] = []
    for k, stmt in enumerate(statements):
        need = set()
        for ref in stmt.expr.refs():
            p = producer.get(ref.tensor.name)
            if p is not None:
                need.add(p)
        if stmt.accumulate and stmt.result.name in producer:
            need.add(producer[stmt.result.name])
        deps.append(need)
        producer[stmt.result.name] = k
        sizes.append(total_extent(stmt.result.indices, bindings))
    return deps, sizes, producer


def peak_live_memory(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    outputs: Optional[Set[str]] = None,
) -> int:
    """Peak of summed live temporary sizes over the given order.

    ``outputs`` (default: results never consumed later) stay live to the
    end; inputs are not counted (they pre-exist).
    """
    deps, sizes, producer = _analyze(statements, bindings)
    consumed_by: Dict[int, int] = {}
    for k, need in enumerate(deps):
        for p in need:
            consumed_by[p] = k
    if outputs is None:
        outputs = {
            statements[k].result.name
            for k in range(len(statements))
            if k not in consumed_by
        }
    live = 0
    peak = 0
    dead_at: Dict[int, List[int]] = {}
    for p, last in consumed_by.items():
        if statements[p].result.name not in outputs:
            dead_at.setdefault(last, []).append(p)
    for k in range(len(statements)):
        live += sizes[k]
        peak = max(peak, live)
        for p in dead_at.get(k, ()):
            live -= sizes[p]
    return peak


def schedule_statements(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    exact_limit: int = 8,
) -> ScheduleResult:
    """Reorder a formula sequence to minimize peak live memory."""
    statements = list(statements)
    n = len(statements)
    baseline = peak_live_memory(statements, bindings)
    if n <= 1:
        return ScheduleResult(statements, baseline, baseline, True)

    deps, sizes, producer = _analyze(statements, bindings)
    users: List[Set[int]] = [set() for _ in range(n)]
    for k, need in enumerate(deps):
        for p in need:
            users[p].add(k)
    outputs = {k for k in range(n) if not users[k]}

    best_order: Optional[List[int]] = None
    if n <= exact_limit:
        best_peak = [baseline]
        found = [list(range(n))]

        def search(order: List[int], scheduled: Set[int], live: Set[int],
                   peak: int) -> None:
            if peak > best_peak[0]:
                return
            if len(order) == n:
                if peak < best_peak[0]:
                    best_peak[0] = peak
                    found[0] = list(order)
                return
            for k in range(n):
                if k in scheduled or not deps[k] <= scheduled:
                    continue
                new_live = set(live)
                new_live.add(k)
                new_sched = scheduled | {k}
                new_peak = max(peak, sum(sizes[p] for p in new_live))
                if new_peak > best_peak[0]:
                    continue
                for p in list(new_live):
                    if p not in outputs and users[p] <= new_sched:
                        new_live.discard(p)
                order.append(k)
                search(order, new_sched, new_live, new_peak)
                order.pop()

        search([], set(), set(), 0)
        best_order = found[0]
        exact = True
    else:
        # greedy: among ready statements pick the one minimizing the
        # live total after scheduling it (frees count negatively)
        scheduled: Set[int] = set()
        live: Set[int] = set()
        order: List[int] = []
        while len(order) < n:
            ready = [
                k
                for k in range(n)
                if k not in scheduled and deps[k] <= scheduled
            ]

            def after(k: int) -> int:
                trial = set(live) | {k}
                tsched = scheduled | {k}
                total = sum(sizes[p] for p in trial)
                freed = sum(
                    sizes[p]
                    for p in trial
                    if p not in outputs and users[p] <= tsched
                )
                return total - freed

            k = min(ready, key=lambda k: (after(k), k))
            order.append(k)
            scheduled.add(k)
            live.add(k)
            for p in list(live):
                if p not in outputs and users[p] <= scheduled:
                    live.discard(p)
        best_order = order
        exact = False

    reordered = [statements[k] for k in best_order]
    peak = peak_live_memory(reordered, bindings)
    if peak > baseline:  # never return something worse
        return ScheduleResult(statements, baseline, baseline, exact)
    return ScheduleResult(reordered, peak, baseline, exact)
