"""Operation minimization (paper Section 2 / "Algebraic Transformations").

Given a sum-of-products tensor expression, find an equivalent sequence of
binary contractions (a *formula sequence*, paper Fig. 1(a)) with minimal
arithmetic-operation count, exploiting commutativity, associativity, and
distributivity.  The underlying decision problem is NP-complete (Lam,
Sadayappan & Wenger 1997); practical inputs have few enough factors per
term that an exact subset dynamic program is fast, and a pruning
branch-and-bound search (as in the paper) is provided for comparison.
"""

from repro.opmin.cost import (
    statement_op_count,
    sequence_op_count,
    term_op_count,
    MULADD_OPS,
    ADD_OPS,
)
from repro.opmin.optree import Contract, Leaf, OpTree, Reduce, tree_cost, tree_to_statements
from repro.opmin.single_term import optimize_term
from repro.opmin.search import exhaustive_best_tree, pruning_search, SearchStats
from repro.opmin.multi_term import TempNamer, optimize_statement, optimize_program
from repro.opmin.factorize import Factorizer
from repro.opmin.schedule import (
    ScheduleResult,
    peak_live_memory,
    schedule_statements,
)

__all__ = [
    "statement_op_count",
    "sequence_op_count",
    "term_op_count",
    "MULADD_OPS",
    "ADD_OPS",
    "Contract",
    "Leaf",
    "Reduce",
    "OpTree",
    "tree_cost",
    "tree_to_statements",
    "optimize_term",
    "exhaustive_best_tree",
    "pruning_search",
    "SearchStats",
    "TempNamer",
    "optimize_statement",
    "optimize_program",
    "Factorizer",
    "ScheduleResult",
    "peak_live_memory",
    "schedule_statements",
]
