"""Pruning branch-and-bound search over contraction orders.

The paper cites a "pruning search procedure [13, 14] that is very
efficient in practice" for the NP-complete operation-minimization
problem.  This module implements that style of search: starting from the
term's factors as fragments, repeatedly combine any pair (general
parenthesization, not chains), accumulating cost and pruning any partial
solution whose cost already reaches the best complete solution found.

It exists alongside the subset DP of :mod:`repro.opmin.single_term` for
two reasons: to cross-validate the DP on random inputs, and to expose
search statistics (states explored with and without pruning) reproducing
the paper's "pruning is effective in practice" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.ast import TensorRef
from repro.expr.indices import Bindings, Index
from repro.opmin.cost import contraction_cost, materialization_cost, reduction_cost
from repro.opmin.optree import Contract, Leaf, OpTree, Reduce


@dataclass
class SearchStats:
    """Counters describing one search run."""

    explored: int = 0  # pair-combination states expanded
    pruned: int = 0  # states cut by the bound
    complete: int = 0  # full contraction orders reached
    best_cost: Optional[int] = None


def _prepare_leaves(
    refs: Sequence[TensorRef],
    sum_indices: FrozenSet[Index],
    bindings: Optional[Bindings],
) -> Tuple[List[OpTree], int]:
    """Build leaf fragments, reducing solely-owned summation indices."""
    base_cost = 0
    fragments: List[OpTree] = []
    for pos, ref in enumerate(refs):
        solo = tuple(
            sorted(
                idx
                for idx in ref.free
                if idx in sum_indices
                and all(
                    idx not in other.free
                    for k, other in enumerate(refs)
                    if k != pos
                )
            )
        )
        leaf: OpTree = Leaf(ref)
        base_cost += materialization_cost(ref, bindings)
        if solo:
            base_cost += reduction_cost(leaf.free, bindings)
            leaf = Reduce(leaf, solo)
        fragments.append(leaf)
    return fragments, base_cost


def pruning_search(
    refs: Sequence[TensorRef],
    sum_indices: FrozenSet[Index],
    bindings: Optional[Bindings] = None,
    prune: bool = True,
) -> Tuple[OpTree, SearchStats]:
    """Find a minimal-cost tree by (optionally pruned) exhaustive search.

    With ``prune=False`` every parenthesization is enumerated -- use only
    for small factor counts (the state count grows as ``(2n-3)!!``).
    """
    if not refs:
        raise ValueError("a term needs at least one factor")
    fragments, base_cost = _prepare_leaves(refs, list_to_frozenset(sum_indices), bindings)
    stats = SearchStats()
    best: List[Optional[Tuple[int, OpTree]]] = [None]

    sum_set = list_to_frozenset(sum_indices)

    def recurse(frags: List[OpTree], cost: int) -> None:
        if len(frags) == 1:
            stats.complete += 1
            if best[0] is None or cost < best[0][0]:
                best[0] = (cost, frags[0])
            return
        for i in range(len(frags)):
            for j in range(i + 1, len(frags)):
                a, b = frags[i], frags[j]
                step = contraction_cost(a.free, b.free, bindings)
                total = cost + step
                if prune and best[0] is not None and total >= best[0][0]:
                    stats.pruned += 1
                    continue
                stats.explored += 1
                rest = [f for k, f in enumerate(frags) if k not in (i, j)]
                others_free: set = set()
                for f in rest:
                    others_free |= f.free
                summable = tuple(
                    sorted(
                        idx
                        for idx in (a.free | b.free)
                        if idx in sum_set and idx not in others_free
                    )
                )
                recurse(rest + [Contract(a, b, summable)], total)

    recurse(fragments, base_cost)
    assert best[0] is not None
    stats.best_cost = best[0][0]
    return best[0][1], stats


def exhaustive_best_tree(
    refs: Sequence[TensorRef],
    sum_indices: FrozenSet[Index],
    bindings: Optional[Bindings] = None,
) -> Tuple[OpTree, SearchStats]:
    """Unpruned exhaustive search (ground truth for validation)."""
    return pruning_search(refs, sum_indices, bindings, prune=False)


def list_to_frozenset(indices) -> FrozenSet[Index]:
    """Accept any iterable of indices."""
    return indices if isinstance(indices, frozenset) else frozenset(indices)
