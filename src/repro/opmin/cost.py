"""Arithmetic-operation cost model.

Conventions (consistent with the paper's Section 2 arithmetic):

* a contraction iteration performing one multiply and one accumulate-add
  costs :data:`MULADD_OPS` = 2 operations;
* a pure reduction (add only) iteration costs :data:`ADD_OPS` = 1;
* the *direct* translation of a k-factor sum-of-products term into a
  single loop nest costs ``(k-1) multiplies + 1 add`` per innermost
  iteration -- for the paper's 4-tensor example this gives exactly
  ``4 x N^10``;
* each reference to a function tensor (integral evaluation) adds its
  ``compute_cost`` per iteration in which it is evaluated.

Costs are plain Python integers, so paper-scale values (``10^15`` and
beyond) are exact.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.expr.ast import Expr, Statement, TensorRef
from repro.expr.canonical import FlatTerm, flatten
from repro.expr.indices import Bindings, Index, total_extent

#: Operations per multiply-accumulate iteration.
MULADD_OPS = 2
#: Operations per add-only (reduction/copy-accumulate) iteration.
ADD_OPS = 1


def term_op_count(
    term: FlatTerm,
    free: Iterable[Index],
    bindings: Optional[Bindings] = None,
    sparse_aware: bool = False,
    in_multi_term: bool = False,
) -> int:
    """Operations of one flat term translated directly to one loop nest.

    ``free`` is the free-index set of the enclosing expression: the loop
    nest iterates over ``free | term summation indices``.

    With ``sparse_aware=True``, declared sparsity scales the work: a
    product term contributes only where every factor is non-zero, so the
    expected iteration count is the dense count times the product of the
    factors' fill fractions (independence assumption -- the usual
    planning estimate).
    """
    _, sum_indices, refs = term
    loop = set(free) | set(sum_indices)
    iters = total_extent(loop, bindings)
    if sparse_aware:
        density = 1.0
        for ref in refs:
            density *= ref.tensor.fill
        iters = max(1, int(iters * density))
    k = len(refs)
    muls = max(k - 1, 0)
    # the accumulate-add exists only when something is being combined:
    # a summation, a multi-factor product, or accumulation of several
    # terms into one target.  A bare copy or a pure function
    # materialization performs no extra arithmetic.
    adds = 1 if (sum_indices or k > 1 or in_multi_term) else 0
    func = sum(r.tensor.compute_cost for r in refs if r.tensor.is_function)
    per_iter = muls + adds + func
    return per_iter * iters


def statement_op_count(
    stmt: Statement,
    bindings: Optional[Bindings] = None,
    sparse_aware: bool = False,
) -> int:
    """Operation count of the direct (single-loop-nest-per-term)
    implementation of a statement.

    The expression must be in (distributable) sum-of-products form --
    which every statement of a formula sequence is.  Raises
    :class:`ValueError` for expressions too entangled to flatten.
    """
    try:
        terms = flatten(stmt.expr)
    except OverflowError:
        raise ValueError(
            f"statement for {stmt.result.name} is not in sum-of-products "
            "form; op counting applies to formula-sequence statements"
        ) from None
    free = stmt.expr.free
    multi = len(terms) > 1
    return sum(
        term_op_count(t, free, bindings, sparse_aware, in_multi_term=multi)
        for t in terms
    )


def sequence_op_count(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    sparse_aware: bool = False,
) -> int:
    """Total operations of a formula sequence (paper Fig. 1(a) style)."""
    return sum(
        statement_op_count(s, bindings, sparse_aware) for s in statements
    )


def _scale(iters: int, density: float) -> int:
    """Scale an iteration count by an expected nonzero density.

    Kept separate so the dense path never converts exact big integers
    through floats (paper-scale counts exceed 2**53).
    """
    if density >= 1.0:
        return iters
    return max(1, int(iters * density))


def contraction_cost(
    left_free: Iterable[Index],
    right_free: Iterable[Index],
    bindings: Optional[Bindings] = None,
    density: float = 1.0,
) -> int:
    """Cost of one binary contraction: 2 ops per point of the joint
    iteration space ``free(left) | free(right)``.

    ``density`` is the expected fraction of joint points where both
    operands are nonzero (product of the operands' fills under the
    independence assumption); sparsity-aware planning passes it to scale
    the count.
    """
    loop = set(left_free) | set(right_free)
    return MULADD_OPS * _scale(total_extent(loop, bindings), density)


def reduction_cost(
    child_free: Iterable[Index],
    bindings: Optional[Bindings] = None,
    density: float = 1.0,
) -> int:
    """Cost of a unary reduction over the child's full index space,
    optionally scaled by the child's expected nonzero density."""
    return ADD_OPS * _scale(total_extent(child_free, bindings), density)


def materialization_cost(
    ref: TensorRef, bindings: Optional[Bindings] = None
) -> int:
    """Cost of materializing a leaf: zero for stored arrays, one function
    evaluation per element for function tensors."""
    if not ref.tensor.is_function:
        return 0
    return ref.tensor.compute_cost * total_extent(ref.indices, bindings)
