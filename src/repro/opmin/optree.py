"""Binary operator trees for contraction sequences.

An :class:`OpTree` describes *how* a single sum-of-products term is
evaluated: leaves are tensor references (input arrays or function
evaluations), :class:`Contract` nodes multiply two subtrees and sum over
the indices that become ready at that point, and :class:`Reduce` nodes
sum a single subtree over indices (needed when a summation index occurs
in only one factor).

``tree_to_statements`` linearizes a tree into the paper's formula-
sequence form (Fig. 1(a)): one statement per internal node, temporaries
named ``T1, T2, ...``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.expr.ast import Expr, Mul, Statement, Sum, TensorRef
from repro.expr.canonical import canonical_key
from repro.expr.indices import Bindings, Index, total_extent
from repro.expr.tensor import Tensor
from repro.opmin.cost import (
    contraction_cost,
    materialization_cost,
    reduction_cost,
)


class OpTree:
    """Base class for operator-tree nodes."""

    @property
    def free(self) -> FrozenSet[Index]:
        """Indices of the value produced by this subtree."""
        raise NotImplementedError

    def expression(self) -> Expr:
        """The tensor expression this subtree computes."""
        raise NotImplementedError

    def leaves(self) -> Tuple["Leaf", ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class Leaf(OpTree):
    """A tensor reference: stored input array or function evaluation."""

    ref: TensorRef

    @property
    def free(self) -> FrozenSet[Index]:
        return self.ref.free

    def expression(self) -> Expr:
        return self.ref

    def leaves(self) -> Tuple["Leaf", ...]:
        return (self,)

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class Reduce(OpTree):
    """Sum a single subtree over ``sum_indices``."""

    child: OpTree
    sum_indices: Tuple[Index, ...]

    def __post_init__(self) -> None:
        if not self.sum_indices:
            raise ValueError("Reduce needs at least one summation index")
        if not set(self.sum_indices) <= self.child.free:
            raise ValueError("Reduce indices must be free in the child")
        object.__setattr__(self, "sum_indices", tuple(sorted(self.sum_indices)))

    @property
    def free(self) -> FrozenSet[Index]:
        return self.child.free - set(self.sum_indices)

    def expression(self) -> Expr:
        return Sum(self.sum_indices, self.child.expression())

    def leaves(self) -> Tuple[Leaf, ...]:
        return self.child.leaves()

    def __str__(self) -> str:
        names = ",".join(i.name for i in self.sum_indices)
        return f"sum({names})[{self.child}]"


@dataclass(frozen=True)
class Contract(OpTree):
    """Multiply two subtrees, summing over ``sum_indices`` on the fly."""

    left: OpTree
    right: OpTree
    sum_indices: Tuple[Index, ...]

    def __post_init__(self) -> None:
        avail = self.left.free | self.right.free
        if not set(self.sum_indices) <= avail:
            raise ValueError("Contract sum indices must be free in a child")
        object.__setattr__(self, "sum_indices", tuple(sorted(self.sum_indices)))

    @cached_property
    def _free(self) -> FrozenSet[Index]:
        return (self.left.free | self.right.free) - set(self.sum_indices)

    @property
    def free(self) -> FrozenSet[Index]:
        return self._free

    @property
    def loop_indices(self) -> FrozenSet[Index]:
        """Joint iteration space of this contraction."""
        return self.left.free | self.right.free

    def expression(self) -> Expr:
        body = Mul((self.left.expression(), self.right.expression()))
        if self.sum_indices:
            return Sum(self.sum_indices, body)
        return body

    def leaves(self) -> Tuple[Leaf, ...]:
        return self.left.leaves() + self.right.leaves()

    def __str__(self) -> str:
        names = ",".join(i.name for i in self.sum_indices)
        head = f"sum({names})" if names else "prod"
        return f"{head}({self.left}, {self.right})"


def tree_cost(tree: OpTree, bindings: Optional[Bindings] = None) -> int:
    """Total operation count of evaluating ``tree`` with every internal
    node materialized as a temporary (the formula-sequence cost).

    Function leaves are charged one materialization (``compute_cost`` per
    element); repeated *distinct* leaves of the same function are each
    charged (CSE happens later, in :mod:`repro.opmin.multi_term`).
    """
    if isinstance(tree, Leaf):
        return materialization_cost(tree.ref, bindings)
    if isinstance(tree, Reduce):
        return tree_cost(tree.child, bindings) + reduction_cost(
            tree.child.free, bindings
        )
    if isinstance(tree, Contract):
        return (
            tree_cost(tree.left, bindings)
            + tree_cost(tree.right, bindings)
            + contraction_cost(tree.left.free, tree.right.free, bindings)
        )
    raise TypeError(f"unknown OpTree node {type(tree).__name__}")


def tree_intermediate_size(
    tree: OpTree, bindings: Optional[Bindings] = None
) -> int:
    """Total element count of all temporaries a formula sequence for
    ``tree`` would materialize (tie-breaking metric for op-equal trees,
    and the input of the memory-minimization stage)."""
    if isinstance(tree, Leaf):
        # materialized function results are temporaries too
        if tree.ref.tensor.is_function:
            return total_extent(tree.ref.indices, bindings)
        return 0
    if isinstance(tree, Reduce):
        return tree_intermediate_size(tree.child, bindings) + total_extent(
            tree.free, bindings
        )
    if isinstance(tree, Contract):
        return (
            tree_intermediate_size(tree.left, bindings)
            + tree_intermediate_size(tree.right, bindings)
            + total_extent(tree.free, bindings)
        )
    raise TypeError(f"unknown OpTree node {type(tree).__name__}")


class _Namer:
    """Generates fresh temporary names avoiding a set of taken names."""

    def __init__(self, taken: Optional[set] = None, prefix: str = "T") -> None:
        self.taken = set(taken or ())
        self.prefix = prefix
        self.counter = 0

    def fresh(self) -> str:
        while True:
            self.counter += 1
            name = f"{self.prefix}{self.counter}"
            if name not in self.taken:
                self.taken.add(name)
                return name


def tree_to_statements(
    tree: OpTree,
    result: Tensor,
    namer: Optional[_Namer] = None,
    registry: Optional[Dict[Tuple, TensorRef]] = None,
    accumulate: bool = False,
) -> List[Statement]:
    """Linearize ``tree`` into a formula sequence ending in ``result``.

    ``registry`` maps canonical expression keys to already-materialized
    temporaries, enabling common-subexpression reuse across trees (and
    across statements when the caller shares the registry).
    """
    namer = namer or _Namer({result.name})
    registry = registry if registry is not None else {}
    statements: List[Statement] = []

    def emit(node: OpTree, expr: Expr) -> TensorRef:
        """Materialize ``expr`` (the value of ``node``) as a temporary."""
        key = canonical_key(expr)
        hit = registry.get(key)
        if hit is not None:
            return hit
        indices = tuple(sorted(node.free))
        temp = Tensor(namer.fresh(), indices)
        statements.append(Statement(temp, expr))
        ref = TensorRef(temp, indices)
        registry[key] = ref
        return ref

    def visit(node: OpTree) -> TensorRef:
        if isinstance(node, Leaf):
            if node.ref.tensor.is_function:
                return emit(node, node.ref)
            return node.ref
        if isinstance(node, Reduce):
            child = visit(node.child)
            return emit(node, Sum(node.sum_indices, child))
        if isinstance(node, Contract):
            left = visit(node.left)
            right = visit(node.right)
            body = Mul((left, right))
            expr: Expr = (
                Sum(node.sum_indices, body) if node.sum_indices else body
            )
            return emit(node, expr)
        raise TypeError(f"unknown OpTree node {type(node).__name__}")

    # the root is assigned to `result` rather than a temporary
    if isinstance(tree, Leaf):
        statements.append(Statement(result, tree.ref, accumulate=accumulate))
        return statements
    if isinstance(tree, Reduce):
        child = visit(tree.child)
        expr = Sum(tree.sum_indices, child)
    elif isinstance(tree, Contract):
        left = visit(tree.left)
        right = visit(tree.right)
        body = Mul((left, right))
        expr = Sum(tree.sum_indices, body) if tree.sum_indices else body
    else:
        raise TypeError(f"unknown OpTree node {type(tree).__name__}")
    statements.append(Statement(result, expr, accumulate=accumulate))
    return statements
