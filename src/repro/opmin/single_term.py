"""Optimal binary-contraction tree for a single product term.

This is the core of the Algebraic Transformations module: given one flat
term (a product of tensor references summed over a set of contraction
indices), find the binary evaluation order minimizing total operation
count.  It generalizes matrix-chain multiplication: any pairing of
factors is allowed, not just adjacent ones (the paper's ``BDCA`` order
for the Section-2 example).

The search is an exact dynamic program over factor subsets
(``O(3^n)`` in the number of factors ``n``).  Summation indices are
summed as early as possible: an index is reduced at the node where the
last factor containing it is multiplied in.  Earlier summation never
increases the operation count under the joint-iteration-space cost model
and strictly shrinks intermediates.

Ties in operation count are broken by total intermediate size, which
hands the memory-minimization stage the friendliest op-minimal tree.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.ast import TensorRef
from repro.expr.indices import Bindings, Index, total_extent
from repro.opmin.cost import contraction_cost, materialization_cost, reduction_cost
from repro.opmin.optree import Contract, Leaf, OpTree, Reduce, tree_intermediate_size
from repro.robustness.budget import as_tracker
from repro.robustness.errors import BudgetExceeded


def optimize_term(
    refs: Sequence[TensorRef],
    sum_indices: FrozenSet[Index],
    bindings: Optional[Bindings] = None,
    sparse_aware: bool = False,
    budget=None,
) -> OpTree:
    """Return a minimal-operation-count tree for ``prod(refs)`` summed
    over ``sum_indices``.

    With ``sparse_aware=True`` the DP scales each contraction's cost by
    the expected nonzero density of its operands (declared fills,
    independence assumption): a leaf's density is its tensor's ``fill``;
    a contraction's operands match at a joint point with probability
    ``d_left * d_right``; summing over indices of extent ``n`` raises
    the result's density to ``min(1, d_left * d_right * n)``.  This can
    change which evaluation order wins -- contracting through a sparse
    operand first shrinks downstream work.

    ``budget`` (a :class:`~repro.robustness.budget.Budget` or shared
    :class:`~repro.robustness.budget.BudgetTracker`) bounds the subset
    DP; on exhaustion the search degrades to the greedy left-to-right
    factorization (still a correct evaluation order, just not the
    op-minimal one) unless the budget is strict.

    Raises :class:`ValueError` for empty terms or summation indices that
    appear in no factor.
    """
    if not refs:
        raise ValueError("a term needs at least one factor")
    owners: Dict[Index, int] = {}
    for pos, ref in enumerate(refs):
        for idx in ref.indices:
            if idx in sum_indices:
                owners[idx] = owners.get(idx, 0) | (1 << pos)
    missing = set(sum_indices) - set(owners)
    if missing:
        names = ", ".join(sorted(i.name for i in missing))
        raise ValueError(f"summation indices in no factor: {names}")

    n = len(refs)
    full = (1 << n) - 1
    tracker = as_tracker(budget)

    def result_indices(mask: int) -> FrozenSet[Index]:
        """Free indices of the value computed from the factors in mask,
        with every fully-owned summation index reduced."""
        out = set()
        for pos in range(n):
            if mask & (1 << pos):
                out |= refs[pos].free
        done = {
            idx
            for idx, own in owners.items()
            if own & mask == own
        }
        return frozenset(out - done)

    # single-factor base cases: reduce solely-owned summation indices
    # best[mask] = (cost, intermediate size, tree, estimated density)
    best: Dict[int, Tuple[int, int, OpTree, float]] = {}
    for pos in range(n):
        mask = 1 << pos
        leaf: OpTree = Leaf(refs[pos])
        cost = materialization_cost(refs[pos], bindings)
        density = refs[pos].tensor.fill if sparse_aware else 1.0
        solo = tuple(
            sorted(idx for idx, own in owners.items() if own == mask)
        )
        if solo:
            cost += reduction_cost(leaf.free, bindings, density)
            leaf = Reduce(leaf, solo)
            if sparse_aware:
                density = min(1.0, density * total_extent(solo, bindings))
        best[mask] = (
            cost, tree_intermediate_size(leaf, bindings), leaf, density
        )

    if n == 1:
        return best[full][2]

    # combine subsets in increasing popcount order
    by_count: List[List[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        by_count[mask.bit_count()].append(mask)

    result_cache: Dict[int, FrozenSet[Index]] = {}

    def res(mask: int) -> FrozenSet[Index]:
        hit = result_cache.get(mask)
        if hit is None:
            hit = result_indices(mask)
            result_cache[mask] = hit
        return hit

    try:
        _subset_dp(n, full, by_count, best, res, owners, bindings,
                   sparse_aware, tracker)
    except BudgetExceeded as exc:
        if tracker is not None:
            tracker.degrade(
                "opmin", exc, "greedy left-to-right factorization"
            )
        return _greedy_left_to_right(refs, owners)

    return best[full][2]


def _subset_dp(
    n: int,
    full: int,
    by_count: List[List[int]],
    best: Dict[int, Tuple[int, int, OpTree, float]],
    res,
    owners: Dict[Index, int],
    bindings: Optional[Bindings],
    sparse_aware: bool,
    tracker,
) -> None:
    """The exact subset DP (exponential; every split ticks the budget)."""
    for count in range(2, n + 1):
        for mask in by_count[count]:
            champion: Optional[Tuple[int, int, OpTree, float]] = None
            # iterate proper submasks; visit each split once (sub < other)
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:
                    if tracker is not None:
                        tracker.tick(1, stage="opmin")
                    lcost, _, ltree, ldens = best[sub]
                    rcost, _, rtree, rdens = best[other]
                    join = contraction_cost(
                        res(sub), res(other), bindings, ldens * rdens
                    )
                    cost = lcost + rcost + join
                    if champion is None or cost <= champion[0]:
                        summed = tuple(
                            sorted(
                                idx
                                for idx, own in owners.items()
                                if own & mask == own
                                and not (own & sub == own)
                                and not (own & other == own)
                            )
                        )
                        tree = Contract(ltree, rtree, summed)
                        size = (
                            best[sub][1]
                            + best[other][1]
                            + (
                                total_extent(tree.free, bindings)
                                if mask != full
                                else 0
                            )
                        )
                        density = (
                            min(
                                1.0,
                                ldens
                                * rdens
                                * total_extent(summed, bindings),
                            )
                            if sparse_aware
                            else 1.0
                        )
                        if (
                            champion is None
                            or cost < champion[0]
                            or (cost == champion[0] and size < champion[1])
                        ):
                            champion = (cost, size, tree, density)
                sub = (sub - 1) & mask
            assert champion is not None
            best[mask] = champion


def _greedy_left_to_right(
    refs: Sequence[TensorRef],
    owners: Dict[Index, int],
) -> OpTree:
    """Budget fallback: contract the factors in writing order.

    Summation semantics match the DP exactly -- an index is reduced at
    the node where its last owning factor is multiplied in (solely-owned
    indices reduce at the leaf) -- so the tree computes the same value,
    just without searching for the cheapest pairing.
    """

    def leaf(pos: int) -> OpTree:
        mask = 1 << pos
        tree: OpTree = Leaf(refs[pos])
        solo = tuple(
            sorted(idx for idx, own in owners.items() if own == mask)
        )
        if solo:
            tree = Reduce(tree, solo)
        return tree

    tree = leaf(0)
    mask = 1
    for pos in range(1, len(refs)):
        new_mask = mask | (1 << pos)
        summed = tuple(
            sorted(
                idx
                for idx, own in owners.items()
                if own & new_mask == own
                and not (own & mask == own)
                and not (own & (1 << pos) == own)
            )
        )
        tree = Contract(tree, leaf(pos), summed)
        mask = new_mask
    return tree
