"""Operation minimization for whole statements and programs.

A statement's right-hand side may be a multi-term sum (the A3A energy
expression has six terms).  Each term is optimized independently by the
subset DP; the resulting trees are linearized into one formula sequence
with common-subexpression elimination across terms *and* across
statements: any intermediate whose canonical expression key was already
materialized is reused instead of recomputed.

The output is a list of binary-contraction statements (paper Fig. 1(a))
suitable for the memory-minimization stage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.expr.ast import Add, Expr, Program, Statement, TensorRef
from repro.expr.canonical import canonical_key, flatten
from repro.expr.indices import Bindings
from repro.expr.tensor import Tensor
from repro.opmin.optree import _Namer, tree_to_statements
from repro.opmin.single_term import optimize_term


class TempNamer(_Namer):
    """Public alias of the temporary-name generator."""


def optimize_statement(
    stmt: Statement,
    bindings: Optional[Bindings] = None,
    namer: Optional[TempNamer] = None,
    registry: Optional[Dict[Tuple, TensorRef]] = None,
    cse: bool = True,
    factorize: bool = True,
    sparse_aware: bool = False,
    budget=None,
) -> List[Statement]:
    """Rewrite one statement into an op-minimal formula sequence.

    Multi-term right-hand sides are first factorized (profitable
    reverse-distributivity merges, see :mod:`repro.opmin.factorize`),
    then each term is optimized and materialized, ending in a combining
    statement; single-term right-hand sides assign the root contraction
    directly to the result.

    ``cse=False`` disables common-subexpression sharing across terms
    (each term gets a private registry); ``factorize=False`` disables
    the reverse-distributivity pass -- ablation knobs used by the
    benchmark suite.  ``sparse_aware=True`` scales the subset DP's costs
    by declared fills (see :func:`repro.opmin.single_term.optimize_term`).
    ``budget`` bounds the subset DP per term (see
    :mod:`repro.robustness.budget`); on exhaustion terms degrade to the
    greedy left-to-right factorization.
    """
    try:
        terms = flatten(stmt.expr)
    except OverflowError:
        raise ValueError(
            f"cannot optimize statement for {stmt.result.name}: expression "
            "does not flatten to sum-of-products form"
        ) from None

    namer = namer or TempNamer({t.name for t in _statement_names(stmt)})
    registry = registry if registry is not None else {}

    out: List[Statement] = []
    if len(terms) == 1 and terms[0][0] == 1.0:
        coef, sum_indices, refs = terms[0]
        tree = optimize_term(refs, sum_indices, bindings, sparse_aware, budget)
        out.extend(
            tree_to_statements(
                tree, stmt.result, namer, registry, accumulate=stmt.accumulate
            )
        )
        return out

    # multi-term: factorize, materialize each term, then combine
    if factorize and len(terms) > 1:
        from repro.opmin.factorize import Factorizer

        machine = Factorizer(namer, bindings)
        terms = machine.run(terms)
        out.extend(machine.helper_statements)

    combined: List[Tuple[float, Expr]] = []
    for coef, sum_indices, refs in terms:
        term_registry = registry if cse else {}
        tree = optimize_term(refs, sum_indices, bindings, sparse_aware, budget)
        expr = tree.expression()
        key = canonical_key(expr)
        hit = term_registry.get(key)
        if hit is None:
            indices = tuple(sorted(tree.free))
            temp = Tensor(namer.fresh(), indices)
            seq = tree_to_statements(tree, temp, namer, term_registry)
            out.extend(seq)
            hit = TensorRef(temp, indices)
            term_registry[key] = hit
        combined.append((coef, hit))
    out.append(
        Statement(stmt.result, Add(tuple(combined)), accumulate=stmt.accumulate)
    )
    return out


def optimize_program(
    program: Program,
    bindings: Optional[Bindings] = None,
    cse: bool = True,
    factorize: bool = True,
    sparse_aware: bool = False,
    budget=None,
) -> List[Statement]:
    """Optimize every statement, sharing temporaries across statements
    (unless ``cse=False``)."""
    taken = {t.name for t in program.tensors()}
    namer = TempNamer(taken)
    registry: Dict[Tuple, TensorRef] = {}
    out: List[Statement] = []
    for stmt in program.statements:
        out.extend(
            optimize_statement(
                stmt,
                bindings,
                namer,
                registry,
                cse=cse,
                factorize=factorize,
                sparse_aware=sparse_aware,
                budget=budget,
            )
        )
    return out


def _statement_names(stmt: Statement) -> List[Tensor]:
    tensors = [stmt.result]
    tensors.extend(ref.tensor for ref in stmt.expr.refs())
    return tensors
