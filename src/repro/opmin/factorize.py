"""Factorization: applying distributivity in reverse.

The Algebraic Transformations module exploits "the distributivity of
multiplication over addition" in both directions.  Splitting a product
over a sum is what :func:`repro.expr.canonical.flatten` undoes; this
module implements the profitable direction: two terms that differ in a
single factor with identical index structure,

    c1 * (A * F * ...)  +  c2 * (A * G * ...)      (same summations)

are rewritten as one term over the combined factor

    A * H * ...   with   H = c1*F + c2*G,

trading one whole contraction for one elementwise addition.  The
rewrite is applied greedily, most-profitable pair first, re-evaluating
costs with the single-term DP after every merge (a merge can enable
further merges).  This captures classic coupled-cluster patterns such
as ``sum(e) F(a,e)*T(e,b,i,j) + sum(e) G(a,e)*T(e,b,i,j)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.expr.ast import Add, Expr, Mul, Statement, Sum, TensorRef
from repro.expr.indices import Bindings, Index, total_extent
from repro.expr.tensor import Tensor
from repro.opmin.cost import ADD_OPS
from repro.opmin.optree import tree_cost
from repro.opmin.single_term import optimize_term

#: A flat term in factorization form.
FTerm = Tuple[float, FrozenSet[Index], Tuple[TensorRef, ...]]


def _ref_key(ref: TensorRef) -> Tuple:
    return (ref.tensor.name, tuple(i.name for i in ref.indices))


def _term_cost(
    term: FTerm, bindings: Optional[Bindings] = None
) -> int:
    """Optimal evaluation cost of one term (via the subset DP)."""
    _, sums, refs = term
    return tree_cost(optimize_term(refs, sums, bindings), bindings)


def _mergeable(
    a: FTerm, b: FTerm
) -> Optional[Tuple[int, int]]:
    """If ``a`` and ``b`` differ in exactly one factor position (same
    index tuple on the differing refs, same summations), return the
    differing positions (pos_in_a, pos_in_b)."""
    _, sums_a, refs_a = a
    _, sums_b, refs_b = b
    if sums_a != sums_b or len(refs_a) != len(refs_b):
        return None
    keys_a = [_ref_key(r) for r in refs_a]
    keys_b = [_ref_key(r) for r in refs_b]
    from collections import Counter

    extra_a = Counter(keys_a) - Counter(keys_b)
    extra_b = Counter(keys_b) - Counter(keys_a)
    if sum(extra_a.values()) != 1 or sum(extra_b.values()) != 1:
        return None
    ka = next(iter(extra_a))
    kb = next(iter(extra_b))
    pos_a = keys_a.index(ka)
    pos_b = keys_b.index(kb)
    ra, rb = refs_a[pos_a], refs_b[pos_b]
    if tuple(ra.indices) != tuple(rb.indices):
        return None  # index structure must match for an elementwise add
    return pos_a, pos_b


class Factorizer:
    """Greedy reverse-distributivity rewriter for a set of flat terms."""

    def __init__(
        self,
        namer,
        bindings: Optional[Bindings] = None,
    ) -> None:
        self.namer = namer
        self.bindings = bindings
        #: statements defining the combined factors (H = c1*F + c2*G)
        self.helper_statements: List[Statement] = []

    def _merge(
        self, a: FTerm, b: FTerm, pos_a: int, pos_b: int
    ) -> FTerm:
        coef_a, sums, refs_a = a
        coef_b, _, refs_b = b
        fa, fb = refs_a[pos_a], refs_b[pos_b]
        combined = Add(((coef_a, fa), (coef_b, fb)))
        indices = tuple(fa.indices)
        helper = Tensor(self.namer.fresh(), indices)
        self.helper_statements.append(Statement(helper, combined))
        new_ref = TensorRef(helper, indices)
        new_refs = tuple(
            new_ref if k == pos_a else r for k, r in enumerate(refs_a)
        )
        return (1.0, sums, new_refs)

    def run(self, terms: Sequence[FTerm]) -> List[FTerm]:
        """Merge profitable pairs until none remain."""
        work = list(terms)
        while True:
            best = None
            for i in range(len(work)):
                for j in range(i + 1, len(work)):
                    hit = _mergeable(work[i], work[j])
                    if hit is None:
                        continue
                    cost_split = _term_cost(
                        work[i], self.bindings
                    ) + _term_cost(work[j], self.bindings)
                    merged_refs = work[i][2]
                    add_cost = ADD_OPS * total_extent(
                        work[i][2][hit[0]].indices, self.bindings
                    )
                    # merged term: same structure as term i
                    cost_merged = (
                        _term_cost(
                            (1.0, work[i][1], work[i][2]), self.bindings
                        )
                        + add_cost
                    )
                    saving = cost_split - cost_merged
                    if saving > 0 and (best is None or saving > best[0]):
                        best = (saving, i, j, hit)
            if best is None:
                return work
            _, i, j, (pos_a, pos_b) = best
            merged = self._merge(work[i], work[j], pos_a, pos_b)
            work = [
                t for k, t in enumerate(work) if k not in (i, j)
            ] + [merged]
