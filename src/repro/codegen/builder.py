"""Construction of loop structures from formula sequences.

Three entry points mirroring the paper's figures:

* :func:`build_unfused` -- one perfect loop nest per statement
  (Fig. 1(b), Fig. 2);
* :func:`build_fused` -- the imperfectly-nested structure realizing a
  fusion configuration from :mod:`repro.fusion.memopt` (Fig. 1(c),
  Fig. 3);
* :func:`apply_tiling` -- split chosen indices into tile/intra-tile loop
  pairs, hoisting the tile loops outermost (Fig. 4).

Correctness rules encoded here:

* a node's array is allocated (and zeroed) at the depth where it is
  fused into its consumer, with the fused dimensions eliminated;
* in tiled code, arrays behind ``keep_global`` (the program outputs)
  keep their full dimensions and are zeroed once, outside the tile
  loops; accumulating statements targeting them must involve every
  tiled index, otherwise contributions would be double-counted -- this
  is checked and rejected;
* internal (per-tile) arrays index tiled dimensions by the intra-tile
  variable only; external arrays and function evaluations reconstruct
  the global index as ``tile*B + intra``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.expr.ast import Statement, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, Index
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Block,
    FuncEval,
    Loop,
    LoopVar,
    Node,
    Sub,
    Term,
    ZeroArr,
    validate,
)
from repro.fusion.memopt import FusionResult
from repro.fusion.tree import CompNode


def _full(i: Index) -> Sub:
    return (LoopVar(i),)


def _term_of_ref(ref: TensorRef, dims: Optional[Sequence[Index]] = None) -> Term:
    """Build the RHS term for a reference; ``dims`` restricts to the
    surviving dimensions of a fusion-reduced array."""
    use = tuple(ref.indices if dims is None else dims)
    subs = tuple(_full(i) for i in use)
    if ref.tensor.is_function:
        return FuncEval(ref.tensor, tuple(_full(i) for i in ref.indices))
    return Access(ref.tensor.name, subs)


def _statement_assigns(
    stmt: Statement,
    target_dims: Optional[Sequence[Index]] = None,
    child_dims: Optional[Mapping[str, Tuple[Index, ...]]] = None,
) -> List[Tuple[Tuple[Index, ...], Assign]]:
    """Innermost assignments of one statement.

    Returns ``[(loop_index_set_of_term, Assign)]``.  ``child_dims`` maps
    fusion-reduced array names to their surviving dimensions.
    """
    child_dims = child_dims or {}
    terms = flatten(stmt.expr)
    t_dims = tuple(stmt.result.indices if target_dims is None else target_dims)
    target = Access(stmt.result.name, tuple(_full(i) for i in t_dims))
    out: List[Tuple[Tuple[Index, ...], Assign]] = []
    for coef, sums, refs in terms:
        rhs: List[Term] = []
        for ref in refs:
            dims = child_dims.get(ref.tensor.name)
            rhs.append(_term_of_ref(ref, dims))
        accumulate = bool(sums) or len(terms) > 1 or stmt.accumulate
        loop_set = tuple(sorted(set(stmt.expr.free) | set(sums)))
        out.append(
            (loop_set, Assign(target, tuple(rhs), accumulate, coef))
        )
    return out


def _nest(order: Sequence[Index], inner: Block) -> Block:
    """Wrap ``inner`` in loops over ``order`` (first = outermost)."""
    block = inner
    for idx in reversed(order):
        block = (Loop(LoopVar(idx), block),)
    return block


def build_unfused(
    statements: Sequence[Statement],
    loop_orders: Optional[Mapping[str, Sequence[Index]]] = None,
) -> Block:
    """One perfect loop nest per statement (paper Fig. 1(b) / Fig. 2).

    ``loop_orders`` optionally fixes the loop order per result name;
    the default is result dimensions (declared order) then summation
    indices (sorted).
    """
    out: List[Node] = []
    produced: Set[str] = set()
    for stmt in statements:
        name = stmt.result.name
        if name not in produced:
            out.append(
                Alloc(name, tuple(_full(i) for i in stmt.result.indices))
            )
            produced.add(name)
        assigns = _statement_assigns(stmt)
        needs_zero = any(a.accumulate for _, a in assigns) and not stmt.accumulate
        if needs_zero:
            out.append(ZeroArr(name))
        for loop_set, assign in assigns:
            if loop_orders and name in loop_orders:
                order = [i for i in loop_orders[name] if i in loop_set]
                order += sorted(set(loop_set) - set(order))
            else:
                order = list(stmt.result.indices)
                order += sorted(set(loop_set) - set(order))
            out.extend(_nest(order, (assign,)))
    block = tuple(out)
    validate(block)
    return block


def _needs_zero(stmt: Statement) -> bool:
    """Whether the direct implementation accumulates (target must be
    zeroed first)."""
    terms = flatten(stmt.expr)
    return (
        any(sums for _, sums, _ in terms)
        or len(terms) > 1
        or stmt.accumulate
    )


def build_fused(result: FusionResult) -> Block:
    """Emit the imperfectly-nested structure of a fusion configuration.

    The loops fused along a chain are physically shared: a node whose
    parent-fusion sequence has length ``d`` contributes its allocation,
    zeroing, remaining loops, and statements at depth ``d`` of the shared
    nest.  A child fused on a *shorter* sequence than its consumer's own
    parent fusion is hoisted to the matching shallower depth of an
    ancestor's emission region ("bubbling").
    """
    decisions = result.decisions

    def array_dims(node: CompNode) -> Tuple[Index, ...]:
        dec = decisions[id(node)]
        fused = set(dec.parent_fusion)
        return tuple(i for i in node.array.indices if i not in fused)

    def emit(
        node: CompNode, prefix: Tuple[Index, ...]
    ) -> Tuple[Block, Dict[int, List[Node]]]:
        """Return (block placed at depth len(prefix), pending items for
        shallower depths keyed by absolute depth)."""
        dec = decisions[id(node)]
        order = dec.loop_order
        if order[: len(prefix)] != tuple(prefix):
            raise ValueError(
                f"loop order of {node.array.name} does not extend its "
                "fusion prefix"
            )
        remaining = order[len(prefix):]

        pending: Dict[int, List[Node]] = {}
        local: Dict[int, List[Node]] = {}

        def place(depth: int, items: List[Node]) -> None:
            target = pending if depth < len(prefix) else local
            target.setdefault(depth, []).extend(items)

        for child, cseq in zip(node.children, dec.child_fusions):
            if child.is_leaf:
                continue
            dims = array_dims(child)
            items: List[Node] = [
                Alloc(child.array.name, tuple(_full(i) for i in dims))
            ]
            if _needs_zero(child.stmt):
                items.append(ZeroArr(child.array.name))
            cblock, cpending = emit(child, cseq)
            for depth, its in cpending.items():
                place(depth, its)
            items.extend(cblock)
            place(len(cseq), items)

        child_dims = {
            child.array.name: array_dims(child)
            for child in node.children
            if not child.is_leaf
        }
        assigns = _statement_assigns(node.stmt, array_dims(node), child_dims)
        for loop_set, _ in assigns:
            if set(loop_set) != set(node.loop_indices):
                raise ValueError(
                    f"node {node.array.name}: per-term loop sets differ; "
                    "fuse only single-loop-nest statements"
                )
        place(len(order), [a for _, a in assigns])

        def level(depth: int) -> Block:
            items: List[Node] = list(local.get(depth, []))
            rel = depth - len(prefix)
            if rel < len(remaining):
                # children/assigns at this depth run before deeper loops
                loop_body = level(depth + 1)
                items.append(Loop(LoopVar(remaining[rel]), loop_body))
            return tuple(items)

        return level(len(prefix)), pending

    root = result.root
    dims = tuple(root.array.indices)  # root fusion is empty
    top: List[Node] = [Alloc(root.array.name, tuple(_full(i) for i in dims))]
    if _needs_zero(root.stmt):
        top.append(ZeroArr(root.array.name))
    block_root, pending = emit(root, ())
    if pending:
        raise AssertionError("root emission cannot have pending items")
    top.extend(block_root)
    block = tuple(top)
    validate(block)
    return block


def apply_tiling(
    block: Block,
    tiles: Mapping[Index, int],
    keep_global: Sequence[str] = (),
) -> Block:
    """Split the given indices into tile/intra-tile loop pairs.

    Tile loops are hoisted outermost (paper Fig. 4).  Arrays named in
    ``keep_global`` keep full dimensions, are allocated and zeroed once
    outside the tile loops, and their accumulating statements must
    mention every tiled index.
    """
    if not tiles:
        return block
    keep = set(keep_global)

    # internal arrays: allocated in the block and not kept global
    allocated = {n.array for n in _walk(block) if isinstance(n, Alloc)}
    unknown = keep - allocated
    if unknown:
        raise ValueError(f"keep_global names not allocated: {sorted(unknown)}")
    internal = allocated - keep

    # Hoisting the tile loops outermost interleaves sibling top-level
    # nests tile by tile.  That reorders a producer nest's writes with a
    # later nest's reads of the same array, which is only sound when the
    # reads stay inside the tile that produced them: the consumer must
    # access the array under exactly the producer's target subscripts,
    # and no tiled loop of the producer may fall outside those
    # subscripts (a partial accumulation would be observed mid-stream).
    _check_cross_nest_tiling(block, set(tiles))

    def tile_sub(sub: Sub, global_view: bool) -> Sub:
        if len(sub) != 1 or sub[0].role != "full":
            raise ValueError("apply_tiling expects untiled input structure")
        idx = sub[0].index
        if idx not in tiles:
            return sub
        b = tiles[idx]
        if global_view:
            return (LoopVar(idx, "tile", b), LoopVar(idx, "intra", b))
        return (LoopVar(idx, "intra", b),)

    def tile_access(acc: Access) -> Access:
        global_view = acc.array not in internal
        return Access(
            acc.array, tuple(tile_sub(s, global_view) for s in acc.subs)
        )

    def tile_term(term: Term) -> Term:
        if isinstance(term, FuncEval):
            return FuncEval(
                term.func, tuple(tile_sub(s, True) for s in term.subs)
            )
        return tile_access(term)

    hoisted: List[Node] = []

    def transform(blk: Block) -> Block:
        out: List[Node] = []
        for node in blk:
            if isinstance(node, Loop):
                var = node.var
                if var.role != "full":
                    raise ValueError("apply_tiling expects untiled input")
                body = transform(node.body)
                if var.index in tiles:
                    var = LoopVar(var.index, "intra", tiles[var.index])
                out.append(Loop(var, body))
            elif isinstance(node, Alloc):
                if node.array in keep:
                    hoisted.append(node)
                else:
                    out.append(
                        Alloc(
                            node.array,
                            tuple(tile_sub(s, False) for s in node.dims),
                        )
                    )
            elif isinstance(node, ZeroArr):
                if node.array in keep:
                    hoisted.append(node)
                else:
                    out.append(node)
            elif isinstance(node, Assign):
                if (
                    node.accumulate
                    and node.target.array in keep
                ):
                    stmt_vars = {
                        v.index
                        for t in (node.target, *node.terms)
                        for v in t.vars()
                    }
                    missing = set(tiles) - stmt_vars
                    if missing:
                        names = ", ".join(sorted(i.name for i in missing))
                        raise ValueError(
                            f"tiling over {names} would double-count the "
                            f"accumulation into global array "
                            f"{node.target.array!r}"
                        )
                out.append(
                    Assign(
                        tile_access(node.target),
                        tuple(tile_term(t) for t in node.terms),
                        node.accumulate,
                        node.coef,
                    )
                )
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown node {type(node).__name__}")
        return tuple(out)

    body = transform(block)
    for idx in sorted(tiles, reverse=True):
        body = (Loop(LoopVar(idx, "tile", tiles[idx]), body),)
    result = tuple(hoisted) + body
    validate(result)
    return result


def _check_cross_nest_tiling(block: Block, tiled: Set[Index]) -> None:
    """Reject tilings that break dependences between top-level nests.

    For each top-level node, collect the loop indices it iterates, the
    subscript tuples it writes per array, and the subscript tuples it
    reads per array.  A read-after-write pair across two top-level
    nodes tolerates the hoisted tile loops only when (a) every tiled
    index the producer iterates appears in its write subscripts (so
    each tile's writes are complete for the elements it touches), and
    (b) the consumer reads the array under the very same subscript
    tuples whenever a tiled index is iterated on both sides (so reads
    never cross into a tile that has not executed yet).
    """
    infos = []
    for node in block:
        loops: Set[Index] = set()
        writes: Dict[str, Set[Tuple[Index, ...]]] = {}
        reads: Dict[str, Set[Tuple[Index, ...]]] = {}
        for n in _walk((node,)):
            if isinstance(n, Loop):
                loops.add(n.var.index)
            elif isinstance(n, Assign):
                target = n.target
                writes.setdefault(target.array, set()).add(
                    tuple(s[0].index for s in target.subs)
                )
                for term in n.terms:
                    if isinstance(term, Access):
                        reads.setdefault(term.array, set()).add(
                            tuple(s[0].index for s in term.subs)
                        )
        infos.append((loops, writes, reads))

    for wi, (wloops, wwrites, _) in enumerate(infos):
        for rloops, _, rreads in infos[wi + 1:]:
            for array, wsubs in wwrites.items():
                rsubs = rreads.get(array)
                if not rsubs:
                    continue
                for idx in tiled:
                    partial = idx in wloops and any(
                        idx not in subs for subs in wsubs
                    )
                    misaligned = (
                        idx in wloops and idx in rloops and wsubs != rsubs
                    )
                    if partial or misaligned:
                        raise ValueError(
                            f"tiling over {idx.name} would reorder the "
                            f"dependence on {array!r} between sibling "
                            "loop nests"
                        )


def _walk(block: Block):
    for node in block:
        yield node
        if isinstance(node, Loop):
            yield from _walk(node.body)
