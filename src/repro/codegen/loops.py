"""Imperfectly-nested loop IR with static analyses.

The IR models exactly the code shapes in the paper's figures:

* ``Loop`` -- a for-loop over a :class:`LoopVar`;
* ``Alloc`` -- declaration of a (possibly dimension-reduced) array at a
  given scope; an ``Alloc`` inside a loop denotes one buffer reused per
  iteration (paper Fig. 1(c): ``T1f`` declared inside the ``b, c`` loop);
* ``ZeroArr`` -- zero-initialization of an allocated array;
* ``Assign`` -- an innermost statement
  ``target (=|+=) coef * term * term * ...`` where each term is an array
  access or a primitive-function evaluation.

Tiling (paper Fig. 4) is expressed through :class:`LoopVar` roles: a
program index ``a`` split with block size ``B`` becomes a ``tile``
variable ``a^t`` (extent ``ceil(N/B)``) and an ``intra`` variable ``a``
(extent ``B``); a subscript that needs the original value combines the
two (see :class:`Sub`).

Analyses: operation count, per-array sizes, total/peak memory, and
distinct-element access counts (the basis of the Section-6 locality cost
model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.expr.indices import Bindings, Index
from repro.expr.tensor import Tensor


@dataclass(frozen=True, order=True)
class LoopVar:
    """A loop variable: a program index or a tile/intra-tile piece of one.

    ``role``:

    * ``"full"`` -- the index itself (extent = index extent);
    * ``"tile"`` -- the inter-tile loop ``a^t`` (extent = ceil(N/B));
    * ``"intra"`` -- the intra-tile loop (extent = B).
    """

    index: Index
    role: str = "full"
    block: int = 0

    def __post_init__(self) -> None:
        if self.role not in ("full", "tile", "intra"):
            raise ValueError(f"bad LoopVar role {self.role!r}")
        if self.role != "full" and self.block <= 0:
            raise ValueError("tile/intra LoopVar needs a positive block size")
        if self.role == "full" and self.block != 0:
            raise ValueError("full LoopVar must not carry a block size")

    def extent(self, bindings: Optional[Bindings] = None) -> int:
        n = self.index.extent(bindings)
        if self.role == "full":
            return n
        if self.role == "tile":
            return -(-n // self.block)  # ceil
        return min(self.block, n)

    @property
    def name(self) -> str:
        if self.role == "full":
            return self.index.name
        suffix = "t" if self.role == "tile" else "i"
        return f"{self.index.name}_{suffix}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: A subscript: an outer-to-inner combination of loop variables.  The
#: value is the mixed-radix combination ``((v1*e2 + v2)*e3 + v3)...``
#: where ``e_k`` is the extent of the k-th variable.  A single full
#: variable is the common case; a (tile, intra) pair reconstructs the
#: original index value ``t*B + i``.
Sub = Tuple[LoopVar, ...]


def sub_extent(sub: Sub, bindings: Optional[Bindings] = None) -> int:
    """Number of distinct values the subscript ranges over."""
    if len(sub) == 1:
        return sub[0].extent(bindings)
    # (tile, intra) pair spans the original index extent
    if (
        len(sub) == 2
        and sub[0].role == "tile"
        and sub[1].role == "intra"
        and sub[0].index == sub[1].index
    ):
        return sub[0].index.extent(bindings)
    out = 1
    for var in sub:
        out *= var.extent(bindings)
    return out


def sub_vars(sub: Sub) -> Tuple[LoopVar, ...]:
    return sub


@dataclass(frozen=True)
class Access:
    """Read or write of ``array`` at a tuple of subscripts."""

    array: str
    subs: Tuple[Sub, ...]

    def vars(self) -> Set[LoopVar]:
        out: Set[LoopVar] = set()
        for sub in self.subs:
            out.update(sub)
        return out

    def __str__(self) -> str:
        inner = ",".join("+".join(v.name for v in s) for s in self.subs)
        return f"{self.array}[{inner}]" if self.subs else self.array


@dataclass(frozen=True)
class FuncEval:
    """Evaluation of a primitive function at a tuple of subscripts."""

    func: Tensor
    subs: Tuple[Sub, ...]

    def __post_init__(self) -> None:
        if not self.func.is_function:
            raise ValueError(f"{self.func.name} is not a function tensor")

    def vars(self) -> Set[LoopVar]:
        out: Set[LoopVar] = set()
        for sub in self.subs:
            out.update(sub)
        return out

    def __str__(self) -> str:
        inner = ",".join("+".join(v.name for v in s) for s in self.subs)
        return f"{self.func.name}({inner})"


Term = Union[Access, FuncEval]


@dataclass(frozen=True)
class Assign:
    """``target (=|+=) coef * t1 * t2 * ...`` at the innermost level."""

    target: Access
    terms: Tuple[Term, ...]
    accumulate: bool = True
    coef: float = 1.0

    def ops_per_iteration(self) -> int:
        """Arithmetic + function ops of a single execution."""
        muls = max(len(self.terms) - 1, 0)
        if self.coef not in (1.0, -1.0):
            muls += 1
        adds = 1 if self.accumulate else 0
        func = sum(
            t.func.compute_cost for t in self.terms if isinstance(t, FuncEval)
        )
        return muls + adds + func

    def __str__(self) -> str:
        op = "+=" if self.accumulate else "="
        rhs = " * ".join(str(t) for t in self.terms)
        if self.coef != 1.0:
            rhs = f"{self.coef} * {rhs}"
        return f"{self.target} {op} {rhs}"


@dataclass(frozen=True)
class Alloc:
    """Array declaration: name + dimension subscript spaces.

    An ``Alloc`` nested inside loops denotes a single buffer reused per
    iteration of the enclosing loops.
    """

    array: str
    dims: Tuple[Sub, ...]

    def size(self, bindings: Optional[Bindings] = None) -> int:
        out = 1
        for dim in self.dims:
            out *= sub_extent(dim, bindings)
        return out

    def __str__(self) -> str:
        inner = ",".join("+".join(v.name for v in s) for s in self.dims)
        return f"alloc {self.array}[{inner}]"


@dataclass(frozen=True)
class ZeroArr:
    """Zero the named (previously allocated) array."""

    array: str

    def __str__(self) -> str:
        return f"{self.array} = 0"


@dataclass(frozen=True)
class Loop:
    """A for-loop over ``var`` with a body block."""

    var: LoopVar
    body: Tuple["Node", ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"for {self.var.name}: ..."


Node = Union[Loop, Alloc, ZeroArr, Assign]
Block = Tuple[Node, ...]


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------

def walk(block: Block) -> Iterator[Node]:
    """Pre-order traversal of every node."""
    for node in block:
        yield node
        if isinstance(node, Loop):
            yield from walk(node.body)


def render(block: Block, indent: int = 0) -> str:
    """Pretty-print the loop structure (paper-figure style)."""
    lines: List[str] = []
    pad = "  " * indent
    for node in block:
        if isinstance(node, Loop):
            lines.append(f"{pad}for {node.var.name}:")
            lines.append(render(node.body, indent + 1))
        else:
            lines.append(f"{pad}{node}")
    return "\n".join(l for l in lines if l)


# ---------------------------------------------------------------------------
# analyses
# ---------------------------------------------------------------------------

def loop_op_count(block: Block, bindings: Optional[Bindings] = None) -> int:
    """Total arithmetic + function operations executed by the structure.

    Tile-boundary guards are accounted for exactly: when both the tile
    and the intra-tile loop of one index enclose a statement, the pair
    contributes the index extent (not ``ceil(N/B) * B``) -- matching the
    interpreter's and generated code's skipped iterations.
    """

    def rec(blk: Block, enclosing: Tuple[LoopVar, ...]) -> int:
        total = 0
        for node in blk:
            if isinstance(node, Loop):
                total += rec(node.body, enclosing + (node.var,))
            elif isinstance(node, Assign):
                total += node.ops_per_iteration() * _guarded_iterations(
                    enclosing, bindings
                )
        return total

    return rec(block, ())


def _guarded_iterations(
    enclosing: Sequence[LoopVar], bindings: Optional[Bindings]
) -> int:
    """Executed iterations of a statement under the given loops, with
    (tile, intra) pairs of one index collapsed to the index extent."""
    tiles = {v.index for v in enclosing if v.role == "tile"}
    count = 1
    for var in enclosing:
        if var.role == "tile" and any(
            w.role == "intra" and w.index == var.index for w in enclosing
        ):
            count *= var.index.extent(bindings)
        elif var.role == "intra" and var.index in tiles:
            continue  # counted with its tile loop
        else:
            count *= var.extent(bindings)
    return count


def array_sizes(
    block: Block, bindings: Optional[Bindings] = None
) -> Dict[str, int]:
    """Size (elements) of every allocated array."""
    out: Dict[str, int] = {}
    for node in walk(block):
        if isinstance(node, Alloc):
            if node.array in out:
                raise ValueError(f"array {node.array!r} allocated twice")
            out[node.array] = node.size(bindings)
    return out


def total_memory(block: Block, bindings: Optional[Bindings] = None) -> int:
    """Sum of all allocated temporary sizes (the Section-5 metric)."""
    return sum(array_sizes(block, bindings).values())


def peak_memory(block: Block, bindings: Optional[Bindings] = None) -> int:
    """High-water mark of simultaneously-live allocations.

    An allocation is live from its position to the end of its enclosing
    block (buffers are reused across iterations of enclosing loops, so
    nesting does not multiply their size).
    """

    def rec(blk: Block, live: int) -> int:
        peak = live
        here = live
        for node in blk:
            if isinstance(node, Alloc):
                here += node.size(bindings)
                peak = max(peak, here)
            elif isinstance(node, Loop):
                peak = max(peak, rec(node.body, here))
        return peak

    return rec(block, 0)


def distinct_accesses(
    node: Loop,
    bindings: Optional[Bindings] = None,
) -> int:
    """Distinct array elements + function evaluations touched in the
    scope of ``node`` during one full execution of it (Section 6's
    ``Accesses``).

    Variables of loops *enclosing* ``node`` are fixed: dimensions
    subscripted only by them contribute a factor 1.
    """
    varying: Set[LoopVar] = set()

    def collect(n: Node) -> None:
        if isinstance(n, Loop):
            varying.add(n.var)
            for child in n.body:
                collect(child)

    collect(node)

    per_array: Dict[Tuple, int] = {}
    for inner in walk((node,)):
        if not isinstance(inner, Assign):
            continue
        touched = [inner.target] + [
            t for t in inner.terms if isinstance(t, Access)
        ] + [t for t in inner.terms if isinstance(t, FuncEval)]
        for acc in touched:
            count = 1
            for sub in acc.subs:
                active = [v for v in sub if v in varying]
                if active:
                    ext = 1
                    for v in active:
                        ext *= v.extent(bindings)
                    # a (tile, intra) pair both active spans the index
                    if (
                        len(sub) == 2
                        and all(v in varying for v in sub)
                        and sub[0].role == "tile"
                    ):
                        ext = min(ext, sub[0].index.extent(bindings))
                    count *= ext
            name = acc.array if isinstance(acc, Access) else acc.func.name
            key = (name, acc.subs)
            per_array[key] = max(per_array.get(key, 0), count)
    return sum(per_array.values())


def loop_vars(block: Block) -> Set[LoopVar]:
    """All loop variables appearing in the structure."""
    return {n.var for n in walk(block) if isinstance(n, Loop)}


def validate(block: Block) -> None:
    """Structural sanity checks: every access variable is bound by an
    enclosing loop, every accessed array is allocated or external.

    External arrays (program inputs/outputs) are those accessed but never
    allocated; they are permitted.
    """
    allocated: Set[str] = set()
    for node in walk(block):
        if isinstance(node, Alloc):
            allocated.add(node.array)

    def rec(blk: Block, bound: Set[LoopVar]) -> None:
        for node in blk:
            if isinstance(node, Loop):
                if node.var in bound:
                    raise ValueError(
                        f"loop variable {node.var.name} shadows an "
                        "enclosing loop"
                    )
                rec(node.body, bound | {node.var})
            elif isinstance(node, Assign):
                for term in (node.target, *node.terms):
                    for var in term.vars():
                        if var not in bound:
                            raise ValueError(
                                f"unbound loop variable {var.name} in {term}"
                            )
    rec(block, set())
