"""Interpreter for the loop IR.

Executes a loop structure element by element against numpy arrays,
tallying measured counters (arithmetic ops, function evaluations,
allocated elements).  Slow by design -- it exists to *validate* that
transformed structures (fused, tiled) compute exactly what the reference
einsum executor computes, and that measured operation counts match the
analytic cost models.  Use small bindings.

Tile-boundary semantics: when an index ``a`` is split into
``(a_t, a_i)``, iterations whose reconstructed global value
``a_t*B + a_i`` falls outside the index extent are skipped (the
generated-code equivalent of an ``if a < N`` guard).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.engine.counters import Counters
from repro.engine.executor import FunctionImpl
from repro.expr.indices import Bindings
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Block,
    FuncEval,
    Loop,
    LoopVar,
    ZeroArr,
)


def execute(
    block: Block,
    inputs: Mapping[str, np.ndarray],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    counters: Optional[Counters] = None,
    trace=None,
) -> Dict[str, np.ndarray]:
    """Run the structure; returns the array environment (inputs +
    allocated arrays).

    ``trace`` is an optional callback ``trace(array_name, coords,
    is_write)`` invoked for every element access -- the hook the cache
    simulator (:mod:`repro.locality.cache_sim`) uses to measure misses.
    """
    functions = functions or {}
    counters = counters if counters is not None else Counters()
    arrays: Dict[str, np.ndarray] = {
        k: np.asarray(v, dtype=np.float64) for k, v in inputs.items()
    }
    allocated: set = set()
    env: Dict[LoopVar, int] = {}

    def sub_value(sub: Tuple[LoopVar, ...]) -> Optional[int]:
        """Value of a subscript; None when out of the index's range."""
        if len(sub) == 1:
            return env[sub[0]]
        # mixed-radix combination; the (tile, intra) pair is the only
        # shape produced by apply_tiling
        value = 0
        for var in sub:
            value = value * (
                var.block if var.role == "intra" else var.extent(bindings)
            )
            value += env[var]
        if len(sub) == 2 and sub[0].role == "tile":
            n = sub[0].index.extent(bindings)
            value = env[sub[0]] * sub[0].block + env[sub[1]]
            if value >= n:
                return None
        return value

    def guard_ok() -> bool:
        """All (tile, intra) pairs currently in scope reconstruct valid
        global coordinates."""
        tiles = {}
        intras = {}
        for var, val in env.items():
            if var.role == "tile":
                tiles[var.index] = (var, val)
            elif var.role == "intra":
                intras[var.index] = (var, val)
        for idx, (tvar, tval) in tiles.items():
            hit = intras.get(idx)
            if hit is None:
                continue
            if tval * tvar.block + hit[1] >= idx.extent(bindings):
                return False
        return True

    def term_value(term) -> float:
        if isinstance(term, FuncEval):
            coords = []
            for sub in term.subs:
                v = sub_value(sub)
                assert v is not None  # guarded before evaluation
                coords.append(v)
            counters.func_evals += 1
            counters.func_ops += term.func.compute_cost
            impl = functions.get(term.func.name)
            if impl is None:
                raise KeyError(
                    f"no implementation for function {term.func.name!r}"
                )
            return float(impl(*coords))
        coords = []
        for sub in term.subs:
            v = sub_value(sub)
            assert v is not None
            coords.append(v)
        try:
            arr = arrays[term.array]
        except KeyError:
            raise KeyError(f"array {term.array!r} neither input nor allocated") from None
        if trace is not None:
            trace(term.array, tuple(coords), False)
        return float(arr[tuple(coords)])

    def run(blk: Block) -> None:
        for node in blk:
            if isinstance(node, Loop):
                var = node.var
                for value in range(var.extent(bindings)):
                    env[var] = value
                    run(node.body)
                del env[var]
            elif isinstance(node, Alloc):
                shape = tuple(
                    _alloc_dim_extent(dim, bindings) for dim in node.dims
                )
                arrays[node.array] = np.zeros(shape)
                if node.array not in allocated:
                    allocated.add(node.array)
                    size = 1
                    for s in shape:
                        size *= s
                    counters.allocate(size)
            elif isinstance(node, ZeroArr):
                arrays[node.array][...] = 0.0
            elif isinstance(node, Assign):
                if not guard_ok():
                    continue
                value = node.coef
                for term in node.terms:
                    value *= term_value(term)
                coords = tuple(
                    sub_value(sub) for sub in node.target.subs
                )
                assert all(c is not None for c in coords)
                target = arrays[node.target.array]
                if trace is not None:
                    trace(node.target.array, coords, True)
                muls = max(len(node.terms) - 1, 0)
                if node.coef not in (1.0, -1.0):
                    muls += 1
                if node.accumulate:
                    target[coords] += value
                    counters.flops += muls + 1
                else:
                    target[coords] = value
                    counters.flops += muls
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown node {type(node).__name__}")

    run(block)
    return arrays


def _alloc_dim_extent(dim: Tuple[LoopVar, ...], bindings: Optional[Bindings]) -> int:
    """Extent of one allocated dimension."""
    out = 1
    for var in dim:
        out *= var.extent(bindings)
    if (
        len(dim) == 2
        and dim[0].role == "tile"
        and dim[1].role == "intra"
        and dim[0].index == dim[1].index
    ):
        out = dim[0].index.extent(bindings)
    return out
