"""Interpreter for the loop IR.

Executes a loop structure element by element against numpy arrays,
tallying measured counters (arithmetic ops, function evaluations,
allocated elements).  Slow by design -- it exists to *validate* that
transformed structures (fused, tiled) compute exactly what the reference
einsum executor computes, and that measured operation counts match the
analytic cost models.  Use small bindings.

Tile-boundary semantics: when an index ``a`` is split into
``(a_t, a_i)``, iterations whose reconstructed global value
``a_t*B + a_i`` falls outside the index extent are skipped (the
generated-code equivalent of an ``if a < N`` guard).

Robustness: inputs are validated against the structure's inferred
shapes before execution (``validate=False`` opts out), so failures name
the offending tensor instead of raising from numpy internals; and the
execution can checkpoint/restart at top-level *unit* granularity (a
top-level statement, or one iteration of a top-level loop) -- see
:mod:`repro.robustness.checkpoint`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.engine.counters import Counters
from repro.engine.executor import FunctionImpl
from repro.expr.indices import Bindings
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Block,
    FuncEval,
    Loop,
    LoopVar,
    ZeroArr,
)
from repro.robustness.checkpoint import (
    checkpoint_path,
    clear_checkpoint,
    counters_state,
    load_checkpoint,
    restore_counters,
    save_checkpoint,
)
from repro.robustness.errors import InjectedFault, ShapeError, SpecError
from repro.robustness.validation import validate_block_inputs


def execute(
    block: Block,
    inputs: Mapping[str, np.ndarray],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    counters: Optional[Counters] = None,
    trace=None,
    *,
    validate: bool = True,
    check_finite: bool = False,
    checkpoint: Optional[str] = None,
    interrupt_after: Optional[int] = None,
    extra_state=None,
    semiring: str = "plus_times",
) -> Dict[str, np.ndarray]:
    """Run the structure; returns the array environment (inputs +
    allocated arrays).

    ``trace`` is an optional callback ``trace(array_name, coords,
    is_write)`` invoked for every element access -- the hook the cache
    simulator (:mod:`repro.locality.cache_sim`) uses to measure misses.

    ``validate`` checks the inputs' shapes/dtypes against the structure
    before running (:func:`repro.robustness.validation.
    validate_block_inputs`); ``check_finite`` additionally rejects
    NaN/Inf inputs.

    ``checkpoint`` names a directory (or file) to snapshot progress
    into after every completed top-level unit; when a checkpoint from
    an interrupted run exists there, execution *resumes* after its last
    completed unit, bit-identical to an uninterrupted run.
    ``interrupt_after=n`` injects a fault
    (:class:`~repro.robustness.errors.InjectedFault`) after ``n`` units
    have completed in this call -- the fault-injection hook the
    checkpoint tests use.  ``extra_state`` is an optional
    ``(get_state, set_state)`` pair folded into the snapshot (used by
    the out-of-core buffer pool).

    ``semiring`` selects the scalar algebra (:mod:`repro.semiring`):
    allocations and re-zeroes fill the reduce-identity element,
    per-element products fold with the combine op, and accumulation is
    the reduce op.  Only coefficient-1 assignments are legal outside
    ``plus_times``; ``check_finite`` is skipped there because infinite
    identity elements are legitimate carrier values.
    """
    from repro.semiring import get_semiring, require_unit_coef

    sr = get_semiring(semiring)
    if not sr.is_default:
        check_finite = False
    combine = sr.py_combine
    reduce_ = sr.py_reduce
    functions = functions or {}
    counters = counters if counters is not None else Counters()
    if validate:
        validate_block_inputs(
            block, inputs, bindings, stage="execution",
            check_finite=check_finite,
        )
    arrays: Dict[str, np.ndarray] = {
        k: np.asarray(v, dtype=np.float64) for k, v in inputs.items()
    }
    allocated: set = set()
    env: Dict[LoopVar, int] = {}

    def sub_value(sub: Tuple[LoopVar, ...]) -> Optional[int]:
        """Value of a subscript; None when out of the index's range."""
        if len(sub) == 1:
            return env[sub[0]]
        # mixed-radix combination; the (tile, intra) pair is the only
        # shape produced by apply_tiling
        value = 0
        for var in sub:
            value = value * (
                var.block if var.role == "intra" else var.extent(bindings)
            )
            value += env[var]
        if len(sub) == 2 and sub[0].role == "tile":
            n = sub[0].index.extent(bindings)
            value = env[sub[0]] * sub[0].block + env[sub[1]]
            if value >= n:
                return None
        return value

    def guard_ok() -> bool:
        """All (tile, intra) pairs currently in scope reconstruct valid
        global coordinates."""
        tiles = {}
        intras = {}
        for var, val in env.items():
            if var.role == "tile":
                tiles[var.index] = (var, val)
            elif var.role == "intra":
                intras[var.index] = (var, val)
        for idx, (tvar, tval) in tiles.items():
            hit = intras.get(idx)
            if hit is None:
                continue
            if tval * tvar.block + hit[1] >= idx.extent(bindings):
                return False
        return True

    def term_value(term) -> float:
        if isinstance(term, FuncEval):
            coords = []
            for sub in term.subs:
                v = sub_value(sub)
                assert v is not None  # guarded before evaluation
                coords.append(v)
            counters.func_evals += 1
            counters.func_ops += term.func.compute_cost
            impl = functions.get(term.func.name)
            if impl is None:
                raise SpecError(
                    f"no implementation for function {term.func.name!r}",
                    stage="execution",
                    tensor=term.func.name,
                )
            return float(impl(*coords))
        coords = []
        for sub in term.subs:
            v = sub_value(sub)
            assert v is not None
            coords.append(v)
        try:
            arr = arrays[term.array]
        except KeyError:
            raise SpecError(
                f"array {term.array!r} neither input nor allocated",
                stage="execution",
                tensor=term.array,
            ) from None
        if trace is not None:
            trace(term.array, tuple(coords), False)
        try:
            return float(arr[tuple(coords)])
        except IndexError:
            raise ShapeError(
                f"array for tensor {term.array!r} has shape "
                f"{arr.shape}, too small for coordinate {tuple(coords)}",
                stage="execution",
                tensor=term.array,
            ) from None

    def run(blk: Block) -> None:
        for node in blk:
            if isinstance(node, Loop):
                var = node.var
                for value in range(var.extent(bindings)):
                    env[var] = value
                    run(node.body)
                del env[var]
            elif isinstance(node, Alloc):
                shape = tuple(
                    _alloc_dim_extent(dim, bindings) for dim in node.dims
                )
                arrays[node.array] = (
                    np.zeros(shape)
                    if sr.is_default
                    else np.full(shape, sr.zero)
                )
                if node.array not in allocated:
                    allocated.add(node.array)
                    size = 1
                    for s in shape:
                        size *= s
                    counters.allocate(size)
            elif isinstance(node, ZeroArr):
                arrays[node.array][...] = sr.zero
            elif isinstance(node, Assign):
                if not guard_ok():
                    continue
                if sr.is_default:
                    value = node.coef
                    for term in node.terms:
                        value *= term_value(term)
                else:
                    require_unit_coef(node.coef, sr, stage="execution")
                    value = sr.one
                    for term in node.terms:
                        value = combine(value, term_value(term))
                coords = tuple(
                    sub_value(sub) for sub in node.target.subs
                )
                assert all(c is not None for c in coords)
                try:
                    target = arrays[node.target.array]
                except KeyError:
                    raise SpecError(
                        f"array {node.target.array!r} neither input nor "
                        "allocated",
                        stage="execution",
                        tensor=node.target.array,
                    ) from None
                if trace is not None:
                    trace(node.target.array, coords, True)
                muls = max(len(node.terms) - 1, 0)
                if node.coef not in (1.0, -1.0):
                    muls += 1
                try:
                    if node.accumulate:
                        if sr.is_default:
                            target[coords] += value
                        else:
                            target[coords] = reduce_(
                                float(target[coords]), value
                            )
                        counters.flops += muls + 1
                    else:
                        target[coords] = value
                        counters.flops += muls
                except IndexError:
                    raise ShapeError(
                        f"array for tensor {node.target.array!r} has shape "
                        f"{target.shape}, too small for coordinate {coords}",
                        stage="execution",
                        tensor=node.target.array,
                    ) from None
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown node {type(node).__name__}")

    if checkpoint is None and interrupt_after is None:
        run(block)
        return arrays

    _run_units(
        block,
        bindings,
        run,
        env,
        arrays,
        allocated,
        counters,
        checkpoint,
        interrupt_after,
        extra_state,
    )
    return arrays


def _run_units(
    block: Block,
    bindings: Optional[Bindings],
    run,
    env: Dict,
    arrays: Dict[str, np.ndarray],
    allocated: set,
    counters: Counters,
    checkpoint: Optional[str],
    interrupt_after: Optional[int],
    extra_state,
) -> None:
    """Drive the structure unit by unit with checkpoint/restart.

    A *unit* is one top-level non-loop node or one iteration of a
    top-level loop; the loop-variable environment is empty at every
    unit boundary, so (arrays, allocated set, counters, extra state)
    is the complete execution state.
    """
    ckpt_file = checkpoint_path(checkpoint) if checkpoint else None
    start_unit = -1
    if ckpt_file is not None:
        saved = load_checkpoint(ckpt_file)
        if saved is not None:
            arrays.clear()
            arrays.update(saved["arrays"])
            allocated.update(saved["allocated"])
            restore_counters(counters, saved["counters"])
            if extra_state is not None and saved.get("extra") is not None:
                extra_state[1](saved["extra"])
            start_unit = saved["unit"]

    unit = -1
    done_here = 0

    def finish_unit() -> None:
        nonlocal done_here
        done_here += 1
        if ckpt_file is not None:
            save_checkpoint(
                ckpt_file,
                {
                    "unit": unit,
                    "arrays": dict(arrays),
                    "allocated": set(allocated),
                    "counters": counters_state(counters),
                    "extra": (
                        extra_state[0]() if extra_state is not None else None
                    ),
                },
            )
        if interrupt_after is not None and done_here >= interrupt_after:
            raise InjectedFault(
                f"interrupted after {done_here} units (unit {unit})",
                stage="execution",
            )

    for node in block:
        if isinstance(node, Loop):
            var = node.var
            for value in range(var.extent(bindings)):
                unit += 1
                if unit <= start_unit:
                    continue
                env[var] = value
                run(node.body)
                del env[var]
                finish_unit()
        else:
            unit += 1
            if unit <= start_unit:
                continue
            run((node,))
            finish_unit()

    if ckpt_file is not None:
        clear_checkpoint(ckpt_file)


def _alloc_dim_extent(dim: Tuple[LoopVar, ...], bindings: Optional[Bindings]) -> int:
    """Extent of one allocated dimension."""
    out = 1
    for var in dim:
        out *= var.extent(bindings)
    if (
        len(dim) == 2
        and dim[0].role == "tile"
        and dim[1].role == "intra"
        and dim[0].index == dim[1].index
    ):
        out = dim[0].index.extent(bindings)
    return out
