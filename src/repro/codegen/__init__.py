"""Loop-nest IR and code generation.

The memory-minimization, space-time, and data-locality stages all reason
about *imperfectly nested loop structures* (paper Figs. 1(c), 2, 3, 4).
This package provides:

* :mod:`repro.codegen.loops` -- the loop IR (loops, allocations,
  assignment statements, tiled loop variables) and static analyses
  (operation count, memory usage, distinct-access counts);
* :mod:`repro.codegen.builder` -- construction of loop structures from
  formula sequences, application of fusion configurations and tiling;
* :mod:`repro.codegen.interp` -- an interpreter that executes the IR and
  tallies measured counters;
* :mod:`repro.codegen.pygen` -- Python source generation from the IR;
* :mod:`repro.codegen.dispatch` -- mixed dense/sparse execution plans
  routing statements with declared-sparse operands to the sparse
  executor while dense statements keep the loop-IR path.
"""

from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Block,
    Loop,
    LoopVar,
    Node,
    ZeroArr,
    array_sizes,
    loop_op_count,
    peak_memory,
    render,
    total_memory,
)
from repro.codegen.builder import (
    build_unfused,
    build_fused,
    apply_tiling,
)
from repro.codegen.interp import execute
from repro.codegen.pygen import generate_source, compile_loops
from repro.codegen.npgen import compile_sequence, generate_numpy_source
from repro.codegen.dispatch import (
    DenseSegment,
    ExecutionPlan,
    SparseSegment,
    execute_plan,
    plan_execution,
)

__all__ = [
    "Access",
    "Alloc",
    "Assign",
    "Block",
    "Loop",
    "LoopVar",
    "Node",
    "ZeroArr",
    "array_sizes",
    "loop_op_count",
    "peak_memory",
    "total_memory",
    "render",
    "build_unfused",
    "build_fused",
    "apply_tiling",
    "execute",
    "generate_source",
    "compile_loops",
    "compile_sequence",
    "generate_numpy_source",
    "ExecutionPlan",
    "DenseSegment",
    "SparseSegment",
    "plan_execution",
    "execute_plan",
]
