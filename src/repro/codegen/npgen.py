"""Vectorized code generation: formula sequences to numpy kernels.

The scalar-loop backend (:mod:`repro.codegen.pygen`) mirrors the paper's
pseudo-code and is ideal for counting and validation, but it is slow.
This backend emits one kernel call per flat term of each statement --
the form a practical user runs at real sizes.  Binary contractions are
lowered to GEMM at generation time (:mod:`repro.kernels.lowering`): the
emitted call carries the precomputed axis permutations and group
arities as literals, so no per-call planning remains.  Terms GEMM
cannot express (repeated indices, 3+ operand products) fall back to
``einsum`` through the process-wide contraction-path cache
(:mod:`repro.kernels.einsum_cache`).  Function tensors are materialized
once per statement over their index grid.

The two backends are cross-validated in the test suite; both must agree
with the reference executor to tight tolerances (the GEMM regrouping
reassociates floating-point sums, so agreement is ``allclose`` at
~1e-12 relative, not bit-for-bit).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.expr.ast import Statement, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, Index, einsum_letters
from repro.kernels.einsum_cache import cached_einsum
from repro.kernels.lowering import exec_gemm, lower_binary_term


def _letters_for(indices: Sequence[Index]) -> Dict[Index, str]:
    """Label table for one statement's einsum calls.

    Delegates to the shared :func:`repro.expr.indices.einsum_letters`
    so statements with more than 52 distinct indices raise the same
    explicit :class:`ValueError` as the reference executor.
    """
    return einsum_letters(sorted(set(indices)))


def generate_numpy_source(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    name: str = "kernel",
) -> str:
    """Render a formula sequence as a numpy kernel's Python source.

    The source references ``_np`` (numpy), ``_gemm``
    (:func:`repro.kernels.lowering.exec_gemm`), and ``_einsum``
    (:func:`repro.kernels.einsum_cache.cached_einsum`), which
    :func:`compile_sequence` injects into the execution namespace.
    """
    lines: List[str] = [f"def {name}(_arrays, _funcs=None):"]
    lines.append("    _arrays = dict(_arrays)")
    lines.append("    _funcs = _funcs or {}")

    for snum, stmt in enumerate(statements):
        terms = flatten(stmt.expr)  # formula statements always flatten
        target = stmt.result
        term_exprs: List[str] = []
        prep: List[str] = []
        for tnum, (coef, sums, refs) in enumerate(terms):
            all_indices = sorted(
                {i for ref in refs for i in ref.indices} | set(target.indices)
            )
            letters = _letters_for(all_indices)
            operands: List[str] = []
            subscripts: List[str] = []
            for rnum, ref in enumerate(refs):
                sub = "".join(letters[i] for i in ref.indices)
                if ref.tensor.is_function:
                    var = f"_f{snum}_{tnum}_{rnum}"
                    shape = tuple(
                        i.extent(bindings) for i in ref.indices
                    )
                    prep.append(
                        f"    {var} = _np.asarray(_funcs[{ref.tensor.name!r}]"
                        f"(*_np.indices({shape!r})), dtype=_np.float64)"
                    )
                    operands.append(var)
                else:
                    operands.append(f"_arrays[{ref.tensor.name!r}]")
                subscripts.append(sub)
            out_sub = "".join(letters[i] for i in target.indices)
            gemm = (
                lower_binary_term(
                    refs[0].indices, refs[1].indices, sums, target.indices
                )
                if len(refs) == 2
                else None
            )
            if len(refs) == 1 and not sums and subscripts[0] == out_sub:
                expr = f"_np.asarray({operands[0]}, dtype=_np.float64)"
            elif gemm is not None:
                expr = (
                    f"_gemm({operands[0]}, {operands[1]}, "
                    f"lred={gemm.lred!r}, rred={gemm.rred!r}, "
                    f"lperm={gemm.lperm!r}, rperm={gemm.rperm!r}, "
                    f"nb={gemm.nb}, nm={gemm.nm}, nk={gemm.nk}, "
                    f"nn={gemm.nn}, operm={gemm.operm!r})"
                )
            else:
                spec = ",".join(subscripts) + "->" + out_sub
                expr = (
                    f"_einsum({spec!r}, " + ", ".join(operands) + ")"
                )
            if coef != 1.0:
                expr = f"{coef} * {expr}"
            term_exprs.append(expr)
        lines.extend(prep)
        rhs = " + ".join(term_exprs)
        if stmt.accumulate:
            lines.append(
                f"    _arrays[{target.name!r}] = "
                f"_arrays.get({target.name!r}, 0.0) + ({rhs})"
            )
        else:
            lines.append(f"    _arrays[{target.name!r}] = {rhs}")
    lines.append("    return _arrays")
    return "\n".join(lines) + "\n"


def compile_sequence(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    name: str = "kernel",
) -> Callable[..., Dict[str, np.ndarray]]:
    """Compile a formula sequence to a fast numpy kernel."""
    source = generate_numpy_source(statements, bindings, name)
    namespace: Dict[str, object] = {
        "_np": np,
        "_gemm": exec_gemm,
        "_einsum": cached_einsum,
    }
    exec(compile(source, f"<generated numpy {name}>", "exec"), namespace)
    return namespace[name]  # type: ignore[return-value]
