"""Python source generation from the loop IR.

``generate_source`` renders a loop structure as a standalone Python
function; ``compile_loops`` execs it and hands back a callable.  The
generated code has the same shape as the paper's pseudocode figures
(explicit nested loops, tile-boundary guards) and is the repository's
"synthesized program": examples print it, tests compare its results
against the reference einsum executor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.expr.indices import Bindings
from repro.codegen.loops import (
    Access,
    Alloc,
    Assign,
    Block,
    FuncEval,
    Loop,
    LoopVar,
    ZeroArr,
)


def _dim_extent_expr(dim: Tuple[LoopVar, ...], bindings: Optional[Bindings]) -> int:
    out = 1
    for var in dim:
        out *= var.extent(bindings)
    if (
        len(dim) == 2
        and dim[0].role == "tile"
        and dim[1].role == "intra"
        and dim[0].index == dim[1].index
    ):
        out = dim[0].index.extent(bindings)
    return out


def _sub_expr(sub: Tuple[LoopVar, ...]) -> str:
    if len(sub) == 1:
        return sub[0].name
    if len(sub) == 2 and sub[0].role == "tile" and sub[1].role == "intra":
        return f"{sub[0].name} * {sub[0].block} + {sub[1].name}"
    parts = []
    expr = ""
    for var in sub:
        ext = var.block if var.role == "intra" else 0
        if not expr:
            expr = var.name
        else:
            expr = f"({expr}) * {ext} + {var.name}"
    return expr


def _term_expr(term) -> str:
    if isinstance(term, FuncEval):
        args = ", ".join(_sub_expr(s) for s in term.subs)
        return f"_funcs[{term.func.name!r}]({args})"
    if not term.subs:
        return f"_arrays[{term.array!r}][()]"
    idx = ", ".join(_sub_expr(s) for s in term.subs)
    return f"_arrays[{term.array!r}][{idx}]"


def generate_source(
    block: Block,
    bindings: Optional[Bindings] = None,
    name: str = "kernel",
) -> str:
    """Render the structure as the source of a Python function
    ``name(_arrays, _funcs)`` mutating/returning the array dict."""
    lines: List[str] = [
        f"def {name}(_arrays, _funcs):",
    ]

    def emit(blk: Block, depth: int, guards: Dict[str, Tuple[str, int, int]]) -> None:
        pad = "    " * (depth + 1)
        if not blk:
            lines.append(f"{pad}pass")
            return
        for node in blk:
            if isinstance(node, Loop):
                var = node.var
                lines.append(
                    f"{pad}for {var.name} in range({var.extent(bindings)}):"
                )
                new_guards = dict(guards)
                if var.role == "tile":
                    new_guards[var.index.name] = (
                        var.name,
                        var.block,
                        var.index.extent(bindings),
                    )
                emit(node.body, depth + 1, new_guards)
            elif isinstance(node, Alloc):
                shape = tuple(
                    _dim_extent_expr(dim, bindings) for dim in node.dims
                )
                lines.append(
                    f"{pad}_arrays[{node.array!r}] = _np.zeros({shape!r})"
                )
            elif isinstance(node, ZeroArr):
                lines.append(f"{pad}_arrays[{node.array!r}][...] = 0.0")
            elif isinstance(node, Assign):
                conds = _guard_conditions(node, guards)
                inner_pad = pad
                if conds:
                    lines.append(f"{pad}if {' and '.join(conds)}:")
                    inner_pad = pad + "    "
                rhs = " * ".join(_term_expr(t) for t in node.terms)
                if node.coef != 1.0:
                    rhs = f"{node.coef} * {rhs}"
                op = "+=" if node.accumulate else "="
                if node.target.subs:
                    idx = ", ".join(_sub_expr(s) for s in node.target.subs)
                    tgt = f"_arrays[{node.target.array!r}][{idx}]"
                else:
                    tgt = f"_arrays[{node.target.array!r}][()]"
                lines.append(f"{inner_pad}{tgt} {op} {rhs}")
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown node {type(node).__name__}")

    emit(block, 0, {})
    lines.append("    return _arrays")
    return "\n".join(lines) + "\n"


def _guard_conditions(
    node: Assign, guards: Dict[str, Tuple[str, int, int]]
) -> List[str]:
    """Tile-boundary guards for every (tile, intra) pair in scope of the
    statement whose global coordinate may exceed the index extent."""
    conds = []
    intra_vars = {
        v.index.name: v
        for t in (node.target, *node.terms)
        for v in t.vars()
        if v.role == "intra"
    }
    # guards also apply to intra loops enclosing the statement even when
    # the statement does not reference them: conservative full check is
    # done by the interpreter; generated code only needs guards when the
    # reconstructed coordinate is used or the pair divides unevenly
    for idx_name, (tname, block_size, extent) in guards.items():
        if extent % block_size == 0:
            continue
        var = intra_vars.get(idx_name)
        if var is not None:
            conds.append(f"{tname} * {block_size} + {var.name} < {extent}")
    return conds


def compile_loops(
    block: Block,
    bindings: Optional[Bindings] = None,
    name: str = "kernel",
) -> Callable[[Dict[str, np.ndarray], Mapping[str, Callable]], Dict[str, np.ndarray]]:
    """Compile the generated source; returns ``kernel(arrays, funcs)``.

    The caller's ``arrays`` dict is copied, mutated with allocated
    results, and returned.
    """
    source = generate_source(block, bindings, name)
    namespace: Dict[str, object] = {"_np": np}
    exec(compile(source, f"<generated {name}>", "exec"), namespace)
    fn = namespace[name]

    def runner(arrays, funcs=None):
        return fn(dict(arrays), funcs or {})

    return runner
