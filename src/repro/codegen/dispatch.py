"""Mixed dense/sparse execution planning.

Statements of a formula sequence whose operands are declared sparse are
dispatched to the nonzero-iterating executor
(:mod:`repro.sparse.executor`); dense statements keep the existing
loop-IR path (fusion -> :func:`repro.codegen.builder.build_fused` ->
:mod:`repro.codegen.interp`).  The sequence is cut into maximal
consecutive runs of same-kind statements; arrays flow between segments
through one shared environment, so a sparse statement may consume a
dense temporary and vice versa.

Dispatch rule: a statement goes sparse iff any referenced tensor is
annotated ``sparse(fill)`` with fill < 1 (:func:`~repro.sparse.estimate.
is_sparse_statement`).  Dynamic sparsity of intermediates is exploited
opportunistically by the sparse executor itself (it compresses dense
operands on use) but does not change the dispatch decision, which is a
compile-time choice from declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.builder import build_fused
from repro.codegen.interp import execute as interp_execute
from repro.codegen.loops import Block
from repro.engine.counters import Counters
from repro.engine.executor import FunctionImpl
from repro.expr.ast import Statement
from repro.expr.indices import Bindings
from repro.fusion.memopt import minimize_memory
from repro.fusion.tree import build_forest
from repro.sparse.estimate import is_sparse_statement


@dataclass(frozen=True)
class DenseSegment:
    """A maximal run of dense statements, lowered to fused loop IR."""

    statements: Tuple[Statement, ...]
    block: Block


@dataclass(frozen=True)
class SparseSegment:
    """A maximal run of statements with declared-sparse operands."""

    statements: Tuple[Statement, ...]


Segment = Union[DenseSegment, SparseSegment]


@dataclass(frozen=True)
class ExecutionPlan:
    """Ordered segments covering a whole formula sequence."""

    segments: Tuple[Segment, ...]

    @property
    def sparse_statements(self) -> Tuple[Statement, ...]:
        return tuple(
            s
            for seg in self.segments
            if isinstance(seg, SparseSegment)
            for s in seg.statements
        )

    @property
    def dense_statements(self) -> Tuple[Statement, ...]:
        return tuple(
            s
            for seg in self.segments
            if isinstance(seg, DenseSegment)
            for s in seg.statements
        )

    def describe(self) -> str:
        lines: List[str] = []
        for seg in self.segments:
            kind = "sparse" if isinstance(seg, SparseSegment) else "dense"
            names = ", ".join(s.result.name for s in seg.statements)
            lines.append(f"{kind}: {names}")
        return "\n".join(lines)


def _lower_dense(
    statements: Tuple[Statement, ...],
    bindings: Optional[Bindings],
    is_last_segment: bool,
    budget=None,
) -> Block:
    """Fuse and lower one dense run exactly like the pipeline does."""
    forest = build_forest(list(statements))
    blocks: List[Block] = []
    for k, root in enumerate(forest):
        shared = not (is_last_segment and k == len(forest) - 1)
        result = minimize_memory(
            root, bindings, include_output=shared, budget=budget
        )
        blocks.append(build_fused(result))
    return tuple(n for blk in blocks for n in blk)


def plan_execution(
    statements: Sequence[Statement],
    bindings: Optional[Bindings] = None,
    budget=None,
) -> ExecutionPlan:
    """Cut a formula sequence into dense/sparse segments and lower the
    dense ones to fused loop structures.

    ``budget`` (a shared :class:`~repro.robustness.budget.
    BudgetTracker`) bounds the per-segment fusion DP exactly as in the
    dense pipeline path.
    """
    runs: List[Tuple[bool, List[Statement]]] = []
    for stmt in statements:
        sparse = is_sparse_statement(stmt)
        if runs and runs[-1][0] == sparse:
            runs[-1][1].append(stmt)
        else:
            runs.append((sparse, [stmt]))
    segments: List[Segment] = []
    for k, (sparse, run) in enumerate(runs):
        if sparse:
            segments.append(SparseSegment(tuple(run)))
        else:
            block = _lower_dense(
                tuple(run),
                bindings,
                is_last_segment=(k == len(runs) - 1),
                budget=budget,
            )
            segments.append(DenseSegment(tuple(run), block))
    return ExecutionPlan(tuple(segments))


def execute_plan(
    plan: ExecutionPlan,
    inputs: Mapping[str, object],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    counters: Optional[Counters] = None,
    *,
    semiring: str = "plus_times",
) -> Dict[str, np.ndarray]:
    """Run a mixed plan; returns the full array environment.

    Dense segments run on the loop-IR interpreter, sparse segments on
    the nonzero-iterating executor; both tally into the same counters
    and both evaluate under the selected ``semiring``.  Inputs may be
    dense arrays or sparse tensors (sparse inputs consumed by a *dense*
    segment are densified on entry).
    """
    from repro.sparse.executor import run_statements as sparse_run
    from repro.sparse.formats import as_dense

    counters = counters if counters is not None else Counters()
    env: Dict[str, object] = dict(inputs)
    for seg in plan.segments:
        if isinstance(seg, SparseSegment):
            env = dict(
                sparse_run(
                    seg.statements, env, bindings, functions, counters,
                    semiring=semiring,
                )
            )
        else:
            dense_env = {k: as_dense(v) for k, v in env.items()}
            env = dict(
                interp_execute(
                    seg.block, dense_env, bindings, functions, counters,
                    semiring=semiring,
                )
            )
    return {k: as_dense(v) for k, v in env.items()}
