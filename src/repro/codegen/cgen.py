"""C (and numba-able Python) source emission for native loop nests.

The native kernel backend (:mod:`repro.kernels.native`) lowers each
flat term of a formula sequence to a *nest spec* -- loop extents, the
output-dimension prefix, and per-operand axis->loop maps -- and this
module renders that spec as compilable source:

* :func:`c_source` -- a single C function ``kern`` computing
  ``out[...] += coef * sum(prod(operands))`` as a fused loop nest.
  Extents are baked in as compile-time constants (the plan is already
  shape-specialized, exactly like the GEMM lowering), operand offsets
  are constant-folded strides, and summation loops longer than the
  tile size are blocked two-level -- the compiled twin of the paper's
  emitted Fortran nests.
* :func:`py_source` -- the same nest as a Python function over flat
  (raveled) arrays.  It is both the numba-jittable variant and the
  compiler-independent semantic reference the tests exec directly.
* :func:`c_fused_source` / :func:`py_fused_source` -- one function for
  a whole *fused statement group*: consecutive statements sharing an
  output iteration space run as one jointly-parallel nest over the
  shared output loops, each member folding its full summation per
  output point.  Intermediates a later member reads are written by an
  earlier member in the same iteration, so values stay in cache and
  the parallel region is entered once per group instead of once per
  statement.
* :func:`render_nest_ir` / :func:`render_fused_ir` -- the
  deterministic text forms that (together with dtype, backend,
  compiler identity, flags, and version) address the compiled
  artifact store.

Parallel emission (all three strategies produce bit-identical results
because each output element is computed by exactly one thread in an
unchanged inner order):

* ``parallel="omp"`` -- ``#pragma omp parallel num_threads(N)`` wraps
  the nest and ``#pragma omp for schedule(static)`` distributes the
  outermost *output* loop; summation tile loops stay outermost and run
  redundantly per thread (index arithmetic only).
* ``parallel="chunk"`` -- the portable fallback when the probed
  compiler has no OpenMP: the kernel gains ``(long lo, long hi)``
  bounds on the outermost output loop and the engine drives one call
  per thread over disjoint slices (ctypes releases the GIL; numba
  kernels are ``nogil``).
* ``simd=True`` -- ``#pragma omp simd`` on the innermost *output*
  loop.  Deliberately not a ``reduction`` over the summation loop:
  vectorizing independent output elements preserves each element's
  accumulation order exactly, while a SIMD reduction would license
  reassociation and break bit-identity with the sequential nest.

The kernel contract, shared by all renderings:

* arrays are C-contiguous and flat; the caller resolves strides;
* the kernel only ever **reduces into** the output (``+=`` under the
  default ``plus_times`` algebra, the semiring's reduce op otherwise);
  the caller fills the output buffer with the semiring's identity
  element before the first term of a statement, which is what makes
  partial folds from tiled summation loops compose (reduce is
  associative with identity);
* repeated loop variables within one operand (diagonals) fold into a
  single offset term, so nests handle the cases GEMM cannot.

Nest IR v3: every spec carries a ``semiring`` id (see
:mod:`repro.semiring`).  Non-default algebras swap ``acc += a*b`` for
``acc = reduce(acc, combine(a, b))``, initialize accumulators with the
reduce identity (``INFINITY`` pulls in ``math.h`` / ``math.inf``), and
reduce into the output instead of adding -- scalar coefficients are a
``plus_times`` notion and the planner only admits coefficient-1 terms
elsewhere.  The semiring id is part of the rendered IR, hence of the
artifact key.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "render_nest_ir",
    "render_fused_ir",
    "c_source",
    "py_source",
    "c_fused_source",
    "py_fused_source",
]

#: bump to invalidate every stored artifact when the emitted code changes
NEST_IR_VERSION = "nest-ir v3"

#: accepted values of the ``parallel`` emission strategy
PARALLEL_STRATEGIES = ("none", "omp", "chunk")


def _operand_offset(spec, k: int, var) -> str:
    """The flat-index expression of operand ``k`` in loop variables.

    ``var`` maps a loop position to its variable name.  Row-major
    strides come from the operand's own axis extents; axes bound to the
    same loop variable (diagonals) merge into one term.
    """
    axes = spec.operands[k]
    shape = [spec.extents[p] for p in axes]
    strides = [1] * len(axes)
    for j in range(len(axes) - 2, -1, -1):
        strides[j] = strides[j + 1] * shape[j + 1]
    by_pos: Dict[int, int] = {}
    for pos, stride in zip(axes, strides):
        by_pos[pos] = by_pos.get(pos, 0) + stride
    terms = []
    for pos in sorted(by_pos):
        stride = by_pos[pos]
        terms.append(var(pos) if stride == 1 else f"{var(pos)}*{stride}")
    return " + ".join(terms) if terms else "0"


def _out_offset(spec, var) -> str:
    """Flat-index expression of the output (row-major over out dims)."""
    shape = list(spec.extents[: spec.nout])
    strides = [1] * len(shape)
    for j in range(len(shape) - 2, -1, -1):
        strides[j] = strides[j + 1] * shape[j + 1]
    terms = [
        var(p) if strides[p] == 1 else f"{var(p)}*{strides[p]}"
        for p in range(spec.nout)
    ]
    return " + ".join(terms) if terms else "0"


def _spec_semiring(spec):
    """The spec's :class:`~repro.semiring.Semiring` (default algebra
    for pre-v3 specs that never carried the field)."""
    from repro.semiring import get_semiring

    return get_semiring(getattr(spec, "semiring", "plus_times"))


def render_nest_ir(spec) -> str:
    """Deterministic text form of a nest spec (artifact-key content)."""
    lines = [
        NEST_IR_VERSION,
        "names=" + ",".join(spec.names),
        "extents=" + ",".join(str(e) for e in spec.extents),
        f"nout={spec.nout}",
        f"semiring={_spec_semiring(spec).name}",
    ]
    for k, axes in enumerate(spec.operands):
        lines.append(f"op{k}=" + ",".join(str(a) for a in axes))
    return "\n".join(lines)


def render_fused_ir(fspec) -> str:
    """Deterministic text form of a fused statement group.

    Embeds each member's nest IR plus the group geometry (shared output
    extents, the output slot each member accumulates into, and whether
    a member reads another member's output -- which drops ``restrict``
    from the emitted pointers), so fusion grouping is part of artifact
    identity.
    """
    lines = [
        NEST_IR_VERSION,
        f"fused nout={fspec.nout}",
        "out_extents=" + ",".join(str(e) for e in fspec.out_extents),
        "slots=" + ",".join(str(s) for s in fspec.out_slots),
        f"aliased={int(fspec.aliased)}",
    ]
    for m, member in enumerate(fspec.members):
        lines.append(f"member{m}:")
        lines.append(member.ir() if hasattr(member, "ir")
                     else render_nest_ir(member))
    return "\n".join(lines)


def _nest_structure(spec, tile: int):
    """Shared loop-structure planning: which sum loops get blocked."""
    n = len(spec.extents)
    out_loops = list(range(spec.nout))
    sum_loops = list(range(spec.nout, n))
    tiled = [p for p in sum_loops if tile and spec.extents[p] > tile]
    return out_loops, sum_loops, tiled


def _check_parallel(parallel: str, nout: int) -> None:
    if parallel not in PARALLEL_STRATEGIES:
        raise ValueError(
            f"unknown parallel strategy {parallel!r} "
            f"(use one of {PARALLEL_STRATEGIES})"
        )
    if parallel != "none" and nout == 0:
        raise ValueError(
            "parallel nests need at least one output loop to distribute"
        )


def c_source(
    spec,
    ctype: str = "double",
    tile: int = 64,
    threads: int = 1,
    parallel: str = "none",
    simd: bool = False,
) -> str:
    """Render the nest spec as one C function ``kern``.

    ``ctype`` is the element type (``double``/``float``); ``coef`` is
    always a double (the plan stores coefficients as Python floats).
    Summation loops longer than ``tile`` are blocked: the tile loops sit
    outermost and the output accumulates one partial sum per tile,
    which is correct because the kernel contract is ``+=`` into a
    caller-zeroed buffer.

    With ``parallel="omp"`` the whole nest runs inside one
    ``#pragma omp parallel num_threads(threads)`` region and the first
    output loop is an ``omp for schedule(static)``; the redundant tile
    loops plus the static schedule keep every output element on one
    thread with contributions in ascending tile order, so the result is
    bit-identical to the sequential nest.  With ``parallel="chunk"``
    the signature becomes ``kern(coef, lo, hi, ...)`` and the first
    output loop covers ``[lo, hi)`` -- the caller threads over disjoint
    slices.  ``simd=True`` adds ``#pragma omp simd`` on the innermost
    output loop (see the module docstring for why not a reduction).
    """
    _check_parallel(parallel, spec.nout)
    sr = _spec_semiring(spec)
    out_loops, sum_loops, tiled = _nest_structure(spec, tile)
    var = lambda p: f"v{p}"  # noqa: E731 - tiny local naming helper
    args = ", ".join(
        [f"const {ctype}* restrict x{k}" for k in range(len(spec.operands))]
        + [f"{ctype}* restrict out"]
    )
    if parallel == "chunk":
        args = f"long lo, long hi, {args}"
    lines: List[str] = [
        f"/* generated by repro.codegen.cgen ({NEST_IR_VERSION}) */",
        "/* " + render_nest_ir(spec).replace("\n", "; ") + " */",
    ]
    for header in sr.c_includes:
        lines.append(f"#include <{header}>")
    lines += [
        f"void kern(double coef, {args})",
        "{",
    ]
    indent = "  "
    omp = parallel == "omp" and threads > 1
    if omp:
        lines.append(f"{indent}#pragma omp parallel num_threads({threads})")
        lines.append(f"{indent}{{")
        indent += "  "
    # outermost: tile loops over the blocked summation dimensions (run
    # redundantly per thread under omp -- index arithmetic only; the
    # implicit barrier of each `omp for` keeps tiles in lockstep)
    for p in tiled:
        e = spec.extents[p]
        lines.append(
            f"{indent}for (long t{p} = 0; t{p} < {e}; t{p} += {tile}) {{"
        )
        indent += "  "
    for i, p in enumerate(out_loops):
        e = spec.extents[p]
        innermost = i == len(out_loops) - 1
        if i == 0 and omp:
            if innermost and simd:
                lines.append(f"{indent}#pragma omp for simd schedule(static)")
            else:
                lines.append(f"{indent}#pragma omp for schedule(static)")
        elif innermost and simd:
            lines.append(f"{indent}#pragma omp simd")
        if i == 0 and parallel == "chunk":
            lines.append(
                f"{indent}for (long v{p} = lo; v{p} < hi; ++v{p}) {{"
            )
        else:
            lines.append(
                f"{indent}for (long v{p} = 0; v{p} < {e}; ++v{p}) {{"
            )
        indent += "  "
    if sr.is_default:
        lines.append(f"{indent}{ctype} acc = 0;")
    else:
        lines.append(f"{indent}{ctype} acc = {sr.c_zero(ctype)};")
    for p in sum_loops:
        e = spec.extents[p]
        if p in tiled:
            lines.append(
                f"{indent}long e{p} = t{p} + {tile} < {e} ? "
                f"t{p} + {tile} : {e};"
            )
            lines.append(
                f"{indent}for (long v{p} = t{p}; v{p} < e{p}; ++v{p}) {{"
            )
        else:
            lines.append(
                f"{indent}for (long v{p} = 0; v{p} < {e}; ++v{p}) {{"
            )
        indent += "  "
    operands_c = [
        f"x{k}[{_operand_offset(spec, k, var)}]"
        for k in range(len(spec.operands))
    ]
    if sr.is_default:
        lines.append(f"{indent}acc += {' * '.join(operands_c)};")
    else:
        combined = operands_c[0]
        for nxt in operands_c[1:]:
            combined = sr.c_combine(combined, nxt)
        lines.append(f"{indent}{ctype} w = {combined};")
        lines.append(f"{indent}acc = {sr.c_reduce('acc', 'w')};")
    for _ in sum_loops:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    off = _out_offset(spec, var)
    if sr.is_default:
        lines.append(f"{indent}out[{off}] += ({ctype})coef * acc;")
    else:
        # coefficient-1 contract (enforced by the planner): pure reduce
        lines.append(
            f"{indent}out[{off}] = {sr.c_reduce(f'out[{off}]', 'acc')};"
        )
    for _ in out_loops:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    for _ in tiled:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    if omp:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def py_source(
    spec, tile: int = 64, name: str = "kern", chunked: bool = False
) -> str:
    """The same nest as a Python function over flat (raveled) arrays.

    ``kern(coef, x0, ..., out)`` accumulates exactly like the C
    rendering; the function body is numba-``njit``-able (plain loops,
    flat indexing, no Python objects) and doubles as the semantic
    reference for the C backend in the tests.  ``chunked=True`` renders
    the parallel-fallback variant ``kern(coef, lo, hi, x0, ..., out)``
    whose first output loop covers ``[lo, hi)``.
    """
    if chunked:
        _check_parallel("chunk", spec.nout)
    sr = _spec_semiring(spec)
    out_loops, sum_loops, tiled = _nest_structure(spec, tile)
    var = lambda p: f"v{p}"  # noqa: E731 - tiny local naming helper
    args = ", ".join(
        [f"x{k}" for k in range(len(spec.operands))] + ["out"]
    )
    if chunked:
        args = f"lo, hi, {args}"
    lines = []
    if "math." in sr.py_zero():
        lines.append("import math")
    lines.append(f"def {name}(coef, {args}):")
    indent = "    "
    for p in tiled:
        e = spec.extents[p]
        lines.append(f"{indent}for t{p} in range(0, {e}, {tile}):")
        indent += "    "
    for i, p in enumerate(out_loops):
        if i == 0 and chunked:
            lines.append(f"{indent}for v{p} in range(lo, hi):")
        else:
            lines.append(f"{indent}for v{p} in range({spec.extents[p]}):")
        indent += "    "
    if sr.is_default:
        lines.append(f"{indent}acc = 0.0")
    else:
        lines.append(f"{indent}acc = {sr.py_zero()}")
    for p in sum_loops:
        e = spec.extents[p]
        if p in tiled:
            lines.append(
                f"{indent}for v{p} in range(t{p}, "
                f"min(t{p} + {tile}, {e})):"
            )
        else:
            lines.append(f"{indent}for v{p} in range({e}):")
        indent += "    "
    operands_py = [
        f"x{k}[{_operand_offset(spec, k, var)}]"
        for k in range(len(spec.operands))
    ]
    if sr.is_default:
        lines.append(f"{indent}acc += {' * '.join(operands_py)}")
    else:
        combined = operands_py[0]
        for nxt in operands_py[1:]:
            combined = sr.py_expr_combine(combined, nxt)
        lines.append(f"{indent}w = {combined}")
        lines.append(f"{indent}acc = {sr.py_expr_reduce('acc', 'w')}")
    indent = "    " * (1 + len(tiled) + len(out_loops))
    off = _out_offset(spec, var)
    if sr.is_default:
        lines.append(f"{indent}out[{off}] += coef * acc")
    else:
        lines.append(
            f"{indent}out[{off}] = {sr.py_expr_reduce(f'out[{off}]', 'acc')}"
        )
    return "\n".join(lines) + "\n"


# -- fused statement groups --------------------------------------------------


def _member_var(nout: int, m: int) -> Callable[[int], str]:
    """Loop-variable naming of fused member ``m``: shared output
    variables ``v0..v{nout-1}``, member-private summation variables
    ``m{m}v{p}`` (each member owns its summation loop positions)."""
    return lambda p: f"v{p}" if p < nout else f"m{m}v{p}"


def c_fused_source(
    fspec,
    ctype: str = "double",
    tile: int = 64,
    threads: int = 1,
    parallel: str = "none",
    simd: bool = False,
) -> str:
    """One C function for a whole fused statement group.

    ``kern(coefs, x0, ..., o0, ...)`` walks the *shared* output loops
    once; inside, each member folds its full summation into a private
    accumulator and adds ``coefs[m] * acc`` to its output slot.  A
    member whose operand is another member's output reads the value
    written earlier in the same iteration (the fusion pass only admits
    such reads when the operand walks the output space identically), so
    the intermediate never round-trips through memory -- and
    ``restrict`` is dropped when that aliasing exists.  Summation-loop
    tiling does not apply here: a member's sum is completed per output
    point, which is what makes the in-iteration dependence legal.

    ``parallel``/``threads``/``simd`` behave exactly as in
    :func:`c_source`; the parallel region is entered once per group
    call instead of once per statement.
    """
    _check_parallel(parallel, fspec.nout)
    nout = fspec.nout
    rq = "" if fspec.aliased else " restrict"
    nops = sum(len(member.operands) for member in fspec.members)
    args = [f"const double*{rq} coefs"]
    if parallel == "chunk":
        args.append("long lo, long hi")
    args += [f"const {ctype}*{rq} x{g}" for g in range(nops)]
    args += [f"{ctype}*{rq} o{s}" for s in range(fspec.nslots)]
    lines: List[str] = [
        f"/* generated by repro.codegen.cgen ({NEST_IR_VERSION}) */",
        "/* fused group: "
        + render_fused_ir(fspec).replace("\n", "; ")
        + " */",
    ]
    headers: List[str] = []
    for member in fspec.members:
        for header in _spec_semiring(member).c_includes:
            if header not in headers:
                headers.append(header)
    for header in headers:
        lines.append(f"#include <{header}>")
    lines += [
        f"void kern({', '.join(args)})",
        "{",
    ]
    indent = "  "
    omp = parallel == "omp" and threads > 1
    if omp:
        lines.append(f"{indent}#pragma omp parallel num_threads({threads})")
        lines.append(f"{indent}{{")
        indent += "  "
    for i in range(nout):
        e = fspec.out_extents[i]
        innermost = i == nout - 1
        if i == 0 and omp:
            if innermost and simd:
                lines.append(f"{indent}#pragma omp for simd schedule(static)")
            else:
                lines.append(f"{indent}#pragma omp for schedule(static)")
        elif innermost and simd:
            lines.append(f"{indent}#pragma omp simd")
        if i == 0 and parallel == "chunk":
            lines.append(
                f"{indent}for (long v{i} = lo; v{i} < hi; ++v{i}) {{"
            )
        else:
            lines.append(
                f"{indent}for (long v{i} = 0; v{i} < {e}; ++v{i}) {{"
            )
        indent += "  "
    g = 0
    for m, member in enumerate(fspec.members):
        sr = _spec_semiring(member)
        var = _member_var(nout, m)
        sum_loops = list(range(nout, len(member.extents)))
        lines.append(f"{indent}{{")
        inner = indent + "  "
        if sr.is_default:
            lines.append(f"{inner}{ctype} acc = 0;")
        else:
            lines.append(f"{inner}{ctype} acc = {sr.c_zero(ctype)};")
        for p in sum_loops:
            e = member.extents[p]
            lines.append(
                f"{inner}for (long {var(p)} = 0; {var(p)} < {e}; "
                f"++{var(p)}) {{"
            )
            inner += "  "
        operands_c = [
            f"x{g + k}[{_operand_offset(member, k, var)}]"
            for k in range(len(member.operands))
        ]
        if sr.is_default:
            lines.append(f"{inner}acc += {' * '.join(operands_c)};")
        else:
            combined = operands_c[0]
            for nxt in operands_c[1:]:
                combined = sr.c_combine(combined, nxt)
            lines.append(f"{inner}{ctype} w = {combined};")
            lines.append(f"{inner}acc = {sr.c_reduce('acc', 'w')};")
        for _ in sum_loops:
            inner = inner[:-2]
            lines.append(f"{inner}}}")
        slot = fspec.out_slots[m]
        dst = f"o{slot}[{_out_offset(member, var)}]"
        if sr.is_default:
            lines.append(f"{inner}{dst} += ({ctype})coefs[{m}] * acc;")
        else:
            lines.append(f"{inner}{dst} = {sr.c_reduce(dst, 'acc')};")
        lines.append(f"{indent}}}")
        g += len(member.operands)
    for _ in range(nout):
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    if omp:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def py_fused_source(
    fspec, tile: int = 64, name: str = "kern", chunked: bool = False
) -> str:
    """The fused group as a Python function over flat arrays.

    ``kern(coefs, x0, ..., o0, ...)`` mirrors :func:`c_fused_source`
    exactly (numba-``njit``-able; ``coefs`` arrives as a float64
    array); ``chunked=True`` adds ``lo, hi`` bounds on the first shared
    output loop for the thread-pool fallback.
    """
    if chunked:
        _check_parallel("chunk", fspec.nout)
    nout = fspec.nout
    nops = sum(len(member.operands) for member in fspec.members)
    args = ["coefs"]
    if chunked:
        args += ["lo", "hi"]
    args += [f"x{g}" for g in range(nops)]
    args += [f"o{s}" for s in range(fspec.nslots)]
    lines = []
    if any("math." in _spec_semiring(m).py_zero() for m in fspec.members):
        lines.append("import math")
    lines.append(f"def {name}({', '.join(args)}):")
    indent = "    "
    for i in range(nout):
        if i == 0 and chunked:
            lines.append(f"{indent}for v{i} in range(lo, hi):")
        else:
            lines.append(
                f"{indent}for v{i} in range({fspec.out_extents[i]}):"
            )
        indent += "    "
    for m, member in enumerate(fspec.members):
        sr = _spec_semiring(member)
        var = _member_var(nout, m)
        sum_loops = list(range(nout, len(member.extents)))
        if sr.is_default:
            lines.append(f"{indent}acc = 0.0")
        else:
            lines.append(f"{indent}acc = {sr.py_zero()}")
        inner = indent
        for p in sum_loops:
            e = member.extents[p]
            lines.append(f"{inner}for {var(p)} in range({e}):")
            inner += "    "
        operands_py = [
            f"x{sum(len(mm.operands) for mm in fspec.members[:m]) + k}"
            f"[{_operand_offset(member, k, var)}]"
            for k in range(len(member.operands))
        ]
        if sr.is_default:
            lines.append(f"{inner}acc += {' * '.join(operands_py)}")
        else:
            combined = operands_py[0]
            for nxt in operands_py[1:]:
                combined = sr.py_expr_combine(combined, nxt)
            lines.append(f"{inner}w = {combined}")
            lines.append(f"{inner}acc = {sr.py_expr_reduce('acc', 'w')}")
        slot = fspec.out_slots[m]
        dst = f"o{slot}[{_out_offset(member, var)}]"
        if sr.is_default:
            lines.append(f"{indent}{dst} += coefs[{m}] * acc")
        else:
            lines.append(f"{indent}{dst} = {sr.py_expr_reduce(dst, 'acc')}")
    return "\n".join(lines) + "\n"
