"""Multi-process SPMD execution of generated rank programs.

The in-process driver (:func:`repro.parallel.spmd.run_spmd`) advances
every rank's generator in one interpreter -- correct, countable, but
serial.  This module runs the *same generated source* across worker OS
processes, the way the paper's target machines run one MPI rank per
processor:

* each worker process executes one or more ranks (round-robin when the
  grid is larger than the worker count), advancing each rank's program
  generator one superstep at a time;
* a bulk-synchronous **router** in the calling process implements the
  superstep barrier: per superstep it issues one ``go`` to every
  worker, collects their outboxes, accounts every cross-rank message
  through a :class:`~repro.parallel.spmd.LocalComm` (so traffic
  counters, :class:`~repro.robustness.faults.FaultSchedule` drops,
  bounded retry with backoff, and :class:`~repro.robustness.errors.
  CommFailure` semantics are *identical* to the in-process driver), and
  ships each rank's inbox with the next ``go``;
* an injected rank crash aborts the superstep loop and restarts the
  statement on the same workers from the original inputs (inputs are
  never mutated, so the rerun is bit-identical), mirroring
  ``run_spmd``'s statement-restart recovery.

Determinism: messages are ordered by the sender's grid-rank position
(stable within a rank), which is exactly the ordinal order the
in-process lock-step driver produces; result blocks are assembled in
grid-rank order.  The process backend is therefore cross-validated
**bit-for-bit** against ``run_spmd`` in the test suite.

Workers hold no state between statements beyond their process: a
``load`` command replaces program, inputs, and mailboxes, so one
:class:`SpmdProcessPool` amortizes process startup across a whole
formula sequence (and across repeated executions).

Transport: command/reply framing always rides the pipe, but ndarray
payloads (rank inputs, superstep messages, collected blocks) travel by
default through ``multiprocessing.shared_memory`` segments
(:mod:`repro.runtime.shm`) instead of being pickled into the pipe --
``transport="pipe"`` restores the pure-pickle wire.  The router tracks
segments it has posted but not yet seen acknowledged (the protocol is
strictly request/reply per worker) and unlinks them if the pool breaks,
so a dead worker cannot orphan shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.parallel.partition import PartitionPlan
from repro.parallel.spmd import (
    LocalComm,
    SpmdRun,
    SpmdSequenceRun,
    generate_spmd_source,
)
from repro.parallel.spmd_runtime import paste
from repro.robustness.errors import CommFailure, InjectedFault
from repro.robustness.faults import ChaosState, FaultSchedule
from repro.runtime.shm import (
    DEFAULT_MIN_BYTES,
    SHM_AVAILABLE,
    pack_message,
    segment_of,
    unlink_segment,
    unpack_message,
)

Rank = Tuple[int, ...]

#: True inside an SPMD worker process (set by ``_worker_main``); the
#: kernel layer reads it lazily to pin nest-level threads to 1 there
IS_SPMD_WORKER = False

#: worker -> router message kinds: ("loaded",) | ("step", outbox, n_done)
#: | ("restarted",) | ("results", {rank: (box, blk)}) | ("error", text)
#: router -> worker: ("load", source, fname, ranks, arrays) |
#: ("go", inbox) | ("restart",) | ("collect",) | ("stop",)
#: Each message is wrapped by :func:`repro.runtime.shm.pack_message`
#: before hitting the pipe (``("raw", msg)`` under the pipe transport).


class _RankComm:
    """Worker-side communicator for one rank.

    Same-rank handoffs stay local (free, uncounted -- exactly like
    ``LocalComm``); cross-rank sends are buffered into an outbox the
    worker ships to the router at the superstep barrier.  Inbound
    messages arrive via :meth:`push` with the next superstep's ``go``.
    """

    def __init__(self, rank: Rank) -> None:
        self.rank = rank
        self._mail: Dict[str, List] = {}
        self._outbox: List[Tuple[Rank, Rank, str, object]] = []

    def send(self, source: Rank, dest: Rank, tag: str, payload) -> None:
        if source == dest:
            self._mail.setdefault(tag, []).append(payload)
        else:
            self._outbox.append((source, dest, tag, payload))

    def recv_all(self, dest: Rank, tag: str) -> List:
        return self._mail.pop(tag, [])

    def push(self, tag: str, payload) -> None:
        self._mail.setdefault(tag, []).append(payload)

    def drain(self) -> List[Tuple[Rank, Rank, str, object]]:
        out = self._outbox
        self._outbox = []
        return out


def _fresh_programs(program, ranks, arrays):
    """(comms, states, gens, live) for a (re)start from the inputs."""
    comms = {r: _RankComm(r) for r in ranks}
    states = {r: {} for r in ranks}
    gens = {r: program(r, comms[r], arrays, states[r]) for r in ranks}
    return comms, states, gens, set(ranks)


def _worker_main(conn, shm_min_bytes: Optional[int] = None) -> None:
    """Entry point of one worker process (see module docstring).

    ``shm_min_bytes`` selects the reply transport: ``None`` pickles
    everything into the pipe; an int side-loads arrays of at least that
    many bytes into shared-memory segments.
    """
    # mark this process as an SPMD worker: KernelRunner pins nest-level
    # thread parallelism to 1 here (the process grid owns the cores;
    # procs x nest threads must not oversubscribe)
    global IS_SPMD_WORKER
    IS_SPMD_WORKER = True
    program = None
    arrays = None
    ranks: List[Rank] = []
    comms: Dict[Rank, _RankComm] = {}
    states: Dict[Rank, Dict] = {}
    gens: Dict[Rank, object] = {}
    live: set = set()
    muted = False

    def reply(msg) -> None:
        if not muted:  # chaos "mute": execute, but swallow the reply
            conn.send(pack_message(msg, shm_min_bytes))

    try:
        while True:
            try:
                msg = unpack_message(conn.recv())
            except EOFError:
                break
            muted = False
            kind = msg[0]
            if kind == "mute":
                # chaos drop_reply: process the wrapped command normally
                # but never answer -- the router's watchdog must notice
                muted = True
                msg = msg[1]
                kind = msg[0]
            if kind == "hang":
                # chaos hang_worker: alive but unresponsive, forever --
                # distinguishable from a dead worker only by a watchdog
                while True:  # pragma: no cover - terminated externally
                    time.sleep(3600)
            try:
                if kind == "load":
                    _, source, fname, ranks, arrays = msg
                    namespace: Dict[str, object] = {}
                    exec(
                        compile(source, "<spmd rank program>", "exec"),
                        namespace,
                    )
                    program = namespace[fname]
                    comms, states, gens, live = _fresh_programs(
                        program, ranks, arrays
                    )
                    reply(("loaded",))
                elif kind == "go":
                    for dest, tag, payload in msg[1]:
                        comms[dest].push(tag, payload)
                    outbox: List = []
                    n_done = 0
                    for rank in ranks:
                        if rank not in live:
                            continue
                        try:
                            next(gens[rank])
                        except StopIteration:
                            live.discard(rank)
                            n_done += 1
                        outbox.extend(comms[rank].drain())
                    reply(("step", outbox, n_done))
                elif kind == "restart":
                    comms, states, gens, live = _fresh_programs(
                        program, ranks, arrays
                    )
                    reply(("restarted",))
                elif kind == "collect":
                    reply(
                        (
                            "results",
                            {
                                r: states[r].get("__result__", (None, None))
                                for r in ranks
                            },
                        )
                    )
                elif kind == "stop":
                    break
                else:
                    reply(("error", f"unknown command {kind!r}"))
            except Exception:
                reply(("error", traceback.format_exc()))
    finally:
        conn.close()


class SpmdProcessPool:
    """A persistent pool of SPMD worker processes.

    Workers are started lazily (at most ``procs``) and reused across
    statements and runs; ``close`` (or use as a context manager) shuts
    them down.  Uses the ``fork`` start method where available (cheap,
    inherits the loaded package) and falls back to ``spawn``.

    ``transport`` selects the ndarray wire: ``"shm"`` (default) ships
    arrays of at least ``shm_min_bytes`` through shared-memory segments
    (:mod:`repro.runtime.shm`); ``"pipe"`` pickles everything into the
    pipe.  ``"shm"`` silently degrades to ``"pipe"`` on platforms
    without POSIX shared memory.  Either way the message *contents* are
    identical, so results and traffic accounting do not depend on the
    transport.
    """

    def __init__(
        self,
        procs: int,
        context=None,
        transport: str = "shm",
        shm_min_bytes: int = DEFAULT_MIN_BYTES,
        recv_timeout_s: Optional[float] = None,
        chaos: Optional[ChaosState] = None,
    ) -> None:
        if procs < 1:
            raise ValueError(f"need at least one worker process, got {procs}")
        if transport not in ("shm", "pipe"):
            raise ValueError(
                f"transport must be 'shm' or 'pipe', got {transport!r}"
            )
        if transport == "shm" and not SHM_AVAILABLE:  # pragma: no cover
            transport = "pipe"
        self.procs = procs
        self.transport = transport
        self.shm_min_bytes = shm_min_bytes
        #: recv watchdog: how long :func:`_recv` waits for a worker
        #: reply before declaring the worker hung, terminating it, and
        #: raising CommFailure.  ``None`` (default) blocks forever --
        #: the pre-watchdog behaviour.  Mutable: a supervisor adopting
        #: a warm pool installs its own timeout.
        self.recv_timeout_s = recv_timeout_s
        #: process-level chaos injection (:class:`~repro.robustness.
        #: faults.ChaosState`); consulted on every posted ``go``.
        #: Mutable for the same adopt-a-warm-pool reason.
        self.chaos = chaos
        if context is None:
            methods = mp.get_all_start_methods()
            context = mp.get_context(
                "fork" if "fork" in methods else methods[0]
            )
        self._ctx = context
        self._workers: List[Tuple[object, object]] = []  # (Process, Conn)
        self._broken = False
        #: segments posted to a worker but not yet acknowledged by a
        #: reply; unlinked on breakage so dead workers cannot leak shm
        self._pending: Dict[int, List[str]] = {}

    def workers(self, n: int) -> List[Tuple[object, object]]:
        """At least ``n`` running workers (capped at ``procs``)."""
        if self._broken:
            raise CommFailure(
                "worker pool is broken (a worker died mid-protocol); "
                "create a fresh SpmdProcessPool",
                stage="spmd-process",
            )
        n = min(n, self.procs)
        min_bytes = self.shm_min_bytes if self.transport == "shm" else None
        while len(self._workers) < n:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, min_bytes),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))
        return self._workers[:n]

    def post(self, conn, msg, proc=None) -> None:
        """Send a command to a worker over the configured transport.

        When a :class:`~repro.robustness.faults.ChaosState` is attached,
        every ``go`` advances its ordinal and may fire process-level
        chaos against this worker: ``kill_worker`` SIGKILLs the process
        before sending (the send or the next recv observes the broken
        pipe), ``hang_worker`` replaces the command with ``("hang",)``
        (the worker sleeps forever; only the recv watchdog notices), and
        ``drop_reply`` wraps the command in ``("mute", ...)`` (the
        worker executes it but never answers).
        """
        if self.chaos is not None and msg and msg[0] == "go":
            action = self.chaos.next_action()
            if action == "kill_worker" and proc is not None:
                proc.kill()
                proc.join(timeout=5)
            elif action == "hang_worker":
                msg = ("hang",)
            elif action == "drop_reply":
                msg = ("mute", msg)
        min_bytes = self.shm_min_bytes if self.transport == "shm" else None
        packed = pack_message(msg, min_bytes)
        seg = segment_of(packed)
        if seg is not None:
            self._pending.setdefault(id(conn), []).append(seg)
        try:
            conn.send(packed)
        except (BrokenPipeError, OSError):
            # the worker died before this command: same breakage as a
            # mid-protocol EOF, surfaced with the same structured error
            self.mark_broken()
            raise CommFailure(
                "SPMD worker process died (pipe closed on send)",
                stage="spmd-process",
            ) from None

    def acknowledge(self, conn) -> None:
        """A reply arrived: every segment posted to ``conn`` is consumed."""
        self._pending.pop(id(conn), None)

    def _unlink_pending(self) -> None:
        for segs in self._pending.values():
            for seg in segs:
                unlink_segment(seg)
        self._pending = {}

    @property
    def broken(self) -> bool:
        """True once a worker died mid-protocol; the pool must not be
        reused (a warm-pool registry evicts it instead)."""
        return self._broken

    def healthy(self) -> bool:
        """Whether the pool is safe to (re)use: not marked broken and
        every started worker process is still alive.  Catches workers
        killed *between* requests, which :meth:`mark_broken` (driven by
        mid-protocol EOFs) cannot see."""
        return not self._broken and all(
            proc.is_alive() for proc, _ in self._workers
        )

    def mark_broken(self) -> None:
        self._broken = True
        self._unlink_pending()

    def close(self) -> None:
        self._unlink_pending()
        for proc, conn in self._workers:
            try:
                conn.send(("raw", ("stop",)))
            except (OSError, ValueError):
                pass
        for proc, conn in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - needs a D-state proc
                # a worker that shrugs off SIGTERM (hung in
                # uninterruptible I/O, masked signals) must not become a
                # zombie holding shm segments open: escalate to SIGKILL
                proc.kill()
                proc.join(timeout=5)
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._workers = []

    def __enter__(self) -> "SpmdProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _recv(pool: SpmdProcessPool, conn, proc=None):
    """Receive one worker reply, surfacing worker-side failures.

    With ``pool.recv_timeout_s`` set, this is the recv **watchdog**: a
    worker that produces no reply within the timeout -- alive but hung,
    indistinguishable from a slow superstep by any other means -- is
    terminated, the pool is marked broken, and a structured
    :class:`CommFailure` (``stage="spmd-process"``) surfaces instead of
    blocking the caller forever.
    """
    timeout = pool.recv_timeout_s
    if timeout is not None:
        try:
            ready = conn.poll(timeout)
        except (EOFError, OSError):  # pragma: no cover - defensive
            ready = True  # fall through to recv, which raises cleanly
        if not ready:
            pool.mark_broken()
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.kill()
                    proc.join(timeout=5)
            raise CommFailure(
                f"SPMD worker unresponsive for {timeout:g}s (recv "
                "watchdog); worker terminated",
                stage="spmd-process",
                timeout_s=timeout,
            )
    try:
        reply = unpack_message(conn.recv())
    except (EOFError, OSError):
        pool.mark_broken()
        raise CommFailure(
            "SPMD worker process exited unexpectedly", stage="spmd-process"
        ) from None
    pool.acknowledge(conn)
    if reply[0] == "error":
        raise CommFailure(
            f"SPMD worker failed:\n{reply[1]}", stage="spmd-process"
        )
    return reply


def run_spmd_process(
    plan: PartitionPlan,
    inputs,
    name: str = "rank_program",
    faults: Optional[FaultSchedule] = None,
    max_retries: int = 3,
    max_restarts: int = 3,
    retry_backoff: float = 0.0,
    sleep: Callable[[float], None] = time.sleep,
    procs: Optional[int] = None,
    pool: Optional[SpmdProcessPool] = None,
    transport: str = "shm",
    semiring: str = "plus_times",
) -> SpmdRun:
    """Execute a partition plan's rank programs across worker processes.

    Drop-in replacement for :func:`repro.parallel.spmd.run_spmd` with
    the same fault-injection, retry, and restart semantics; returns the
    same :class:`~repro.parallel.spmd.SpmdRun` (the ``comm`` carries the
    router's traffic counters, which equal the in-process driver's).

    ``procs`` bounds the worker count (default: one per rank); ``pool``
    reuses an existing :class:`SpmdProcessPool` so callers executing a
    sequence pay process startup once.  ``transport`` configures the
    ndarray wire of a pool created here (a passed-in ``pool`` keeps its
    own transport).
    """
    # workers exec the shipped source text, so the semiring-aware
    # emission here is the only change the process backend needs
    source = generate_spmd_source(plan, name, semiring=semiring)
    grid = plan.grid
    ranks = list(grid.ranks())
    nworkers = max(1, min(procs or len(ranks), len(ranks)))
    owned = pool is None
    if pool is None:
        pool = SpmdProcessPool(nworkers, transport=transport)
    try:
        return _drive(
            pool, nworkers, plan, source, name, ranks, inputs,
            faults, max_retries, max_restarts, retry_backoff, sleep,
            semiring,
        )
    finally:
        if owned:
            pool.close()


def _drive(
    pool: SpmdProcessPool,
    nworkers: int,
    plan: PartitionPlan,
    source: str,
    name: str,
    ranks: List[Rank],
    inputs,
    faults: Optional[FaultSchedule],
    max_retries: int,
    max_restarts: int,
    retry_backoff: float,
    sleep: Callable[[float], None],
    semiring: str = "plus_times",
) -> SpmdRun:
    grid = plan.grid
    workers = pool.workers(nworkers)
    nworkers = len(workers)
    assignment = [ranks[w::nworkers] for w in range(nworkers)]
    worker_of = {r: w for w, rs in enumerate(assignment) for r in rs}
    rank_pos = {r: k for k, r in enumerate(ranks)}

    arrays = dict(inputs)
    for w, (_, conn) in enumerate(workers):
        pool.post(conn, ("load", source, name, assignment[w], arrays))
    for proc, conn in workers:
        _recv(pool, conn, proc)  # "loaded"

    restarts = 0
    fired_crashes: set = set()
    supersteps = 0
    while True:
        comm = LocalComm(
            grid, faults=faults, max_retries=max_retries,
            retry_backoff=retry_backoff, sleep=sleep,
        )
        supersteps = 0
        live = len(ranks)
        inboxes: List[List] = [[] for _ in workers]
        try:
            while live:
                # mirror run_spmd: a scheduled crash fires at the start
                # of the superstep, before any rank advances
                if (
                    faults is not None
                    and supersteps in faults.crash_supersteps
                    and supersteps not in fired_crashes
                ):
                    fired_crashes.add(supersteps)
                    raise InjectedFault(
                        f"rank crash injected at superstep {supersteps}",
                        stage="spmd",
                    )
                for w, (proc, conn) in enumerate(workers):
                    pool.post(conn, ("go", inboxes[w]), proc)
                outboxes: List[List] = []
                for proc, conn in workers:
                    reply = _recv(pool, conn, proc)  # ("step", outbox, n)
                    outboxes.append(reply[1])
                    live -= reply[2]
                supersteps += 1
                # account and route: global ordinal order is by sender's
                # grid-rank position (stable within one rank's sends),
                # exactly the in-process lock-step driver's order
                messages = [m for outbox in outboxes for m in outbox]
                messages.sort(key=lambda m: rank_pos[m[0]])
                for source_rank, dest, tag, payload in messages:
                    comm.send(source_rank, dest, tag, payload)
                inboxes = [[] for _ in workers]
                for (dest, tag), payloads in comm.drain().items():
                    box = inboxes[worker_of[dest]]
                    for payload in payloads:
                        box.append((dest, tag, payload))
            break
        except InjectedFault:
            restarts += 1
            if restarts > max_restarts:
                raise CommFailure(
                    f"execution did not complete within {max_restarts} "
                    "restarts",
                    stage="spmd",
                ) from None
            for _, conn in workers:
                pool.post(conn, ("restart",))
            for proc, conn in workers:
                _recv(pool, conn, proc)  # "restarted"

    for _, conn in workers:
        pool.post(conn, ("collect",))
    results: Dict[Rank, Tuple] = {}
    for proc, conn in workers:
        results.update(_recv(pool, conn, proc)[1])

    indices = tuple(plan.root.indices)
    shape = tuple(i.extent(plan.bindings) for i in indices)
    if semiring == "plus_times":
        out = np.zeros(shape)
    else:
        from repro.semiring import get_semiring

        out = np.full(shape, get_semiring(semiring).zero)
    whole = tuple((0, n) for n in shape)
    for rank in ranks:
        box, blk = results.get(rank, (None, None))
        if box is not None:
            paste(out, whole, box, blk)
    return SpmdRun(out, comm, source, supersteps, restarts)


def run_spmd_sequence_process(
    statements,
    seq_plan,
    inputs,
    faults: Optional[FaultSchedule] = None,
    max_retries: int = 3,
    max_restarts: int = 3,
    procs: Optional[int] = None,
    pool: Optional[SpmdProcessPool] = None,
    transport: str = "shm",
    semiring: str = "plus_times",
) -> SpmdSequenceRun:
    """Process-backend twin of :func:`repro.parallel.spmd.
    run_spmd_sequence`: every statement's rank programs run on one
    shared worker pool."""
    from repro.parallel.spmd import run_spmd_sequence

    return run_spmd_sequence(
        statements, seq_plan, inputs, faults=faults,
        max_retries=max_retries, max_restarts=max_restarts,
        backend="process", procs=procs, pool=pool, transport=transport,
        semiring=semiring,
    )
