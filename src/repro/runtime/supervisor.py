"""Supervised worker pools: respawn, watchdogs, bounded retry.

:class:`~repro.runtime.process.SpmdProcessPool` is deliberately dumb
about failure: a dead or hung worker marks the pool *broken* and every
subsequent use raises :class:`~repro.robustness.errors.CommFailure`.
That is the right contract for a library primitive -- fail fast, never
guess -- but a serving runtime needs the next request to succeed, not
an apology.  :class:`PoolSupervisor` owns that recovery:

* **dead-worker detection** -- before every statement the supervisor
  health-checks its pool (:meth:`SpmdProcessPool.healthy`: not marked
  broken *and* every worker process alive), catching workers killed
  between statements that no mid-protocol EOF could reveal;
* **automatic respawn** -- an unhealthy pool is closed (terminate ->
  kill escalation, shm segments unlinked) and replaced with a fresh one
  with the same shape, watchdog, and chaos state; an ``on_respawn``
  callback lets registries (``repro.server.pools``) re-key their
  bookkeeping to the replacement;
* **bounded statement-level retry** -- the BSP statement is the
  transaction: inputs are never mutated, so re-running a failed
  statement on a repaired pool is bit-identical to an undisturbed run.
  Only *process-level* failures (``CommFailure`` with
  ``stage="spmd-process"``: worker death, watchdog timeout, broken
  pipe) are retried; logical failures (injected rank crashes beyond
  the restart limit, worker-side exceptions re-raised as ``stage=
  "spmd"``) are deterministic and propagate immediately.

Every respawn and retry is recorded in :attr:`PoolSupervisor.notes`,
which :meth:`repro.pipeline.SynthesisResult.run_parallel` merges into
``last_run_notes`` -- recovery is observable, never silent.

The ordinal counter of an attached
:class:`~repro.robustness.faults.ChaosState` lives in the state, not
the pool, so a chaos schedule keeps advancing across respawns and each
scheduled event fires at most once -- which is what makes supervised
chaos runs terminate: the schedule drains, then a clean retry succeeds.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, TypeVar

from repro.robustness.errors import CommFailure, DeadlineExceeded
from repro.robustness.faults import ChaosState
from repro.runtime.process import SpmdProcessPool

T = TypeVar("T")

#: default recv watchdog installed by the serving layer (seconds); long
#: enough for any tier-1 superstep, short enough that a hung worker
#: cannot pin a request slot for more than a few seconds
DEFAULT_WATCHDOG_S = 10.0


class PoolSupervisor:
    """Supervises one :class:`SpmdProcessPool` (see module docstring).

    Parameters
    ----------
    procs, transport:
        Shape of pools this supervisor (re)spawns.  Both default from
        ``pool`` when one is adopted.
    pool:
        An existing pool to adopt (e.g. a warm pool leased from the
        server registry).  The supervisor installs its own
        ``recv_timeout_s`` and ``chaos`` on it; the pool remains
        caller-owned in the sense that :meth:`detach` hands the current
        (possibly respawned) pool back without closing it.
    recv_timeout_s:
        Recv watchdog for supervised pools; ``None`` disables it.
    chaos:
        A :class:`ChaosState` attached to every supervised pool.
    max_statement_retries:
        How many times :meth:`run_statement` re-runs a statement after
        a process-level failure before giving up (0 = fail fast).
    time_left:
        Optional callable returning remaining seconds of the caller's
        deadline; when it is non-positive at retry time the supervisor
        raises :class:`DeadlineExceeded` instead of retrying.
    on_respawn:
        ``on_respawn(old_pool, new_pool)`` called after every respawn
        (``old_pool`` may be ``None`` on first spawn); registries use
        it to re-key leases from the dead pool to its replacement.
    """

    def __init__(
        self,
        procs: Optional[int] = None,
        transport: str = "shm",
        *,
        pool: Optional[SpmdProcessPool] = None,
        recv_timeout_s: Optional[float] = DEFAULT_WATCHDOG_S,
        chaos: Optional[ChaosState] = None,
        max_statement_retries: int = 2,
        time_left: Optional[Callable[[], float]] = None,
        on_respawn: Optional[
            Callable[[Optional[SpmdProcessPool], SpmdProcessPool], None]
        ] = None,
    ) -> None:
        if pool is None and procs is None:
            raise ValueError("need procs or an existing pool to adopt")
        if max_statement_retries < 0:
            raise ValueError(
                f"max_statement_retries must be >= 0, "
                f"got {max_statement_retries}"
            )
        self.procs = pool.procs if pool is not None else procs
        self.transport = pool.transport if pool is not None else transport
        self.recv_timeout_s = recv_timeout_s
        self.chaos = chaos
        self.max_statement_retries = max_statement_retries
        self.time_left = time_left
        self.on_respawn = on_respawn
        #: pools spawned to replace dead/broken ones (adoption excluded)
        self.respawns = 0
        #: statements re-run after a process-level failure
        self.retries = 0
        #: human-readable recovery log, merged into ``last_run_notes``
        self.notes: List[str] = []
        self._pool = pool
        if pool is not None:
            pool.recv_timeout_s = recv_timeout_s
            pool.chaos = chaos

    @property
    def pool(self) -> Optional[SpmdProcessPool]:
        """The currently supervised pool (``None`` before first use)."""
        return self._pool

    def ensure_pool(self) -> SpmdProcessPool:
        """A healthy pool: the current one, or a fresh respawn."""
        pool = self._pool
        if pool is not None and pool.healthy():
            return pool
        if pool is not None:
            self.respawns += 1
            self.notes.append(
                f"supervisor: pool unhealthy, respawned "
                f"(respawn #{self.respawns})"
            )
            try:
                pool.close()
            except Exception:  # pragma: no cover - defensive
                pass
        fresh = SpmdProcessPool(
            self.procs,
            transport=self.transport,
            recv_timeout_s=self.recv_timeout_s,
            chaos=self.chaos,
        )
        self._pool = fresh
        if self.on_respawn is not None:
            self.on_respawn(pool, fresh)
        return fresh

    def run_statement(
        self, run: Callable[[SpmdProcessPool], T]
    ) -> T:
        """Run ``run(pool)`` with respawn-and-retry recovery.

        ``run`` must be a statement-shaped transaction: it reads its
        inputs, never mutates them, and returns the result -- exactly
        the contract of ``run_spmd_sequence`` on one statement.  On a
        process-level :class:`CommFailure` the pool is respawned and
        ``run`` re-invoked, up to ``max_statement_retries`` times; the
        rerun is bit-identical to an undisturbed execution.
        """
        attempt = 0
        while True:
            pool = self.ensure_pool()
            try:
                return run(pool)
            except CommFailure as exc:
                if exc.stage != "spmd-process":
                    raise  # logical/deterministic failure: no retry
                attempt += 1
                if attempt > self.max_statement_retries:
                    self.notes.append(
                        f"supervisor: giving up after {attempt} "
                        f"process-level failures (retry budget "
                        f"{self.max_statement_retries})"
                    )
                    raise
                if self.time_left is not None and self.time_left() <= 0:
                    raise DeadlineExceeded(
                        "deadline expired before statement retry "
                        f"(attempt {attempt})",
                        stage="supervisor",
                    ) from exc
                self.retries += 1
                self.notes.append(
                    f"supervisor: statement retry {attempt}/"
                    f"{self.max_statement_retries} after {exc.message!r}"
                )

    def detach(self) -> Optional[SpmdProcessPool]:
        """Hand the current pool back (e.g. to a warm-pool registry)
        without closing it; the supervisor forgets it.  Request-scoped
        chaos is stripped so a re-parked warm pool never injects a past
        request's schedule into a future one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.chaos = None
        return pool

    def close(self) -> None:
        """Close the supervised pool, if any."""
        pool = self.detach()
        if pool is not None:
            pool.close()

    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def deadline_clock(
    deadline_ms: Optional[int],
    now: Callable[[], float] = time.monotonic,
) -> Optional[Callable[[], float]]:
    """A ``time_left()`` callable counting down from ``deadline_ms``
    starting now, or ``None`` when no deadline is set.  Shared by the
    serving layer and the CLI so both thread deadlines the same way."""
    if deadline_ms is None:
        return None
    expiry = now() + deadline_ms / 1000.0
    return lambda: expiry - now()
