"""Content-addressed caching of synthesis results.

``synthesize()`` chains five search stages, several of them
worst-case-exponential; in a serving scenario the same specification is
compiled over and over.  A :class:`PlanCache` memoizes the complete
:class:`~repro.pipeline.SynthesisResult` under a content-addressed key:

    sha256( package version
          + configuration fingerprint
          + canonical program text )

* the **canonical program text** comes from
  :func:`repro.expr.printer.program_to_source`, so two sources that
  parse to the same program (whitespace, comments, formatting) share a
  cache entry;
* the **configuration fingerprint** enumerates every
  :class:`~repro.pipeline.SynthesisConfig` field generically (mappings
  are order-normalized), so *any* config change -- machine model, grid,
  communication weights, stage toggles, budgets -- yields a different
  key, and fields added in future versions are picked up automatically;
* the **package version** invalidates everything on upgrade: a newer
  compiler may plan differently.

Storage is a :class:`repro.store.TwoTierStore`: a bounded in-memory LRU
over an optional sharded on-disk tier (atomic, lock-protected writes --
concurrent server workers and CLI runs share one directory safely;
corrupt or unreadable files are treated as misses and removed).  Values
are stored *pickled* even in memory, so every hit returns a private
deep copy -- callers can mutate results freely without poisoning the
cache.

The serving layer (:mod:`repro.server`) additionally deduplicates
concurrent identical requests against the same key; every deduplicated
waiter is recorded here through :meth:`PlanCache.note_coalesced` so one
:meth:`PlanCache.stats` snapshot tells the whole hit/miss/coalesce
story.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import fields
from typing import Dict, Mapping, Optional, Tuple

from repro.store import TwoTierStore

__all__ = ["PlanCache", "plan_key", "config_fingerprint"]


def _result_current(result) -> bool:
    """Whether a decoded result matches this release's result schema.

    Results pickled by older releases lack ``result_version`` in their
    instance ``__dict__`` entirely (unpickling bypasses ``__init__``,
    and the dataclass default is deliberately not trusted -- it lives on
    the *class*, which is always current), so they read as stale misses
    here instead of resurfacing as objects whose newer attributes raise
    ``AttributeError`` deep inside execution.  The version prefix of
    :func:`plan_key` already keeps releases apart; this hook is the
    defense for entries written under a matching key by any other route
    (shared cache directories, hand-rolled keys, downgraded packages).
    Non-result values (the store is content-agnostic) pass through.
    """
    from repro.pipeline import RESULT_VERSION, SynthesisResult

    if not isinstance(result, SynthesisResult):
        return True
    return result.__dict__.get("result_version") == RESULT_VERSION


def config_fingerprint(config) -> str:
    """A deterministic text rendering of every config field.

    Field values render through ``repr`` (the models are frozen
    dataclasses whose reprs enumerate their fields); mappings such as
    ``bindings`` are sorted first so iteration order cannot split the
    cache.
    """
    parts = []
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, Mapping):
            value = ("mapping", tuple(sorted(value.items())))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def plan_key(program, config) -> str:
    """The content-addressed cache key of (program, config, version)."""
    from repro import __version__
    from repro.expr.printer import program_to_source

    payload = "\n".join(
        [__version__, config_fingerprint(config), program_to_source(program)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanCache:
    """In-memory LRU + optional on-disk store of synthesis results.

    ``maxsize`` bounds the in-memory entry count (least recently used
    entries are evicted; disk entries are never evicted by the LRU).
    ``directory`` enables the persistent tier: entries found on disk are
    promoted back into memory on hit.
    """

    def __init__(
        self, maxsize: int = 128, directory: Optional[str] = None
    ) -> None:
        self._store = TwoTierStore(maxsize, directory, suffix=".plan.pkl")
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def maxsize(self) -> int:
        return self._store.maxsize

    @property
    def directory(self) -> Optional[str]:
        return self._store.directory

    @property
    def _memory(self):
        return self._store._memory

    @property
    def hits(self) -> int:
        return self._store.hits

    @property
    def memory_hits(self) -> int:
        return self._store.memory_hits

    @property
    def disk_hits(self) -> int:
        return self._store.disk_hits

    @property
    def misses(self) -> int:
        return self._store.misses

    @property
    def evictions(self) -> int:
        return self._store.evictions

    def _path(self, key: str) -> str:
        return self._store.path(key)

    def get(self, key: str) -> Optional[Tuple[object, str]]:
        """``(result, tier)`` for a cached key, else ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``; the returned result is a
        private copy (unpickled from the stored bytes).  Entries whose
        result schema predates this release are dropped and counted
        ``stale`` (see :func:`_result_current`).
        """
        return self._store.get(
            key, decode=pickle.loads, validate=_result_current
        )

    def put(self, key: str, result) -> None:
        """Store a synthesis result under ``key`` in both tiers."""
        self._store.put(
            key, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def note_coalesced(self, n: int = 1) -> None:
        """Record ``n`` requests that shared an in-flight synthesis for
        one of this cache's keys instead of running their own (the
        serving layer's request coalescing)."""
        self.coalesced += n

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits per tier, misses, evictions, and
        coalesced requests (see :meth:`note_coalesced`)."""
        out = self._store.stats()
        out["coalesced"] = self.coalesced
        return out

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier with ``disk=True``)."""
        self._store.clear(disk=disk)

    def describe(self) -> str:
        text = self._store.describe("PlanCache")
        if self.coalesced:
            text += f", {self.coalesced} coalesced"
        return text
