"""Content-addressed caching of synthesis results.

``synthesize()`` chains five search stages, several of them
worst-case-exponential; in a serving scenario the same specification is
compiled over and over.  A :class:`PlanCache` memoizes the complete
:class:`~repro.pipeline.SynthesisResult` under a content-addressed key:

    sha256( package version
          + configuration fingerprint
          + canonical program text )

* the **canonical program text** comes from
  :func:`repro.expr.printer.program_to_source`, so two sources that
  parse to the same program (whitespace, comments, formatting) share a
  cache entry;
* the **configuration fingerprint** enumerates every
  :class:`~repro.pipeline.SynthesisConfig` field generically (mappings
  are order-normalized), so *any* config change -- machine model, grid,
  communication weights, stage toggles, budgets -- yields a different
  key, and fields added in future versions are picked up automatically;
* the **package version** invalidates everything on upgrade: a newer
  compiler may plan differently.

Entries live in a bounded in-memory LRU and, when a ``directory`` is
given, as pickle files on disk (written atomically; corrupt or
unreadable files are treated as misses and removed).  Values are stored
*pickled* even in memory, so every hit returns a private deep copy --
callers can mutate results freely without poisoning the cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import fields
from typing import Mapping, Optional, Tuple

__all__ = ["PlanCache", "plan_key", "config_fingerprint"]


def config_fingerprint(config) -> str:
    """A deterministic text rendering of every config field.

    Field values render through ``repr`` (the models are frozen
    dataclasses whose reprs enumerate their fields); mappings such as
    ``bindings`` are sorted first so iteration order cannot split the
    cache.
    """
    parts = []
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, Mapping):
            value = ("mapping", tuple(sorted(value.items())))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def plan_key(program, config) -> str:
    """The content-addressed cache key of (program, config, version)."""
    from repro import __version__
    from repro.expr.printer import program_to_source

    payload = "\n".join(
        [__version__, config_fingerprint(config), program_to_source(program)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanCache:
    """In-memory LRU + optional on-disk store of synthesis results.

    ``maxsize`` bounds the in-memory entry count (least recently used
    entries are evicted; disk entries are never evicted by the LRU).
    ``directory`` enables the persistent tier: entries found on disk are
    promoted back into memory on hit.
    """

    def __init__(
        self, maxsize: int = 128, directory: Optional[str] = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.plan.pkl")

    def get(self, key: str) -> Optional[Tuple[object, str]]:
        """``(result, tier)`` for a cached key, else ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``; the returned result is a
        private copy (unpickled from the stored bytes).
        """
        blob = self._memory.get(key)
        if blob is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            self.memory_hits += 1
            return pickle.loads(blob), "memory"
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                result = pickle.loads(blob)
            except FileNotFoundError:
                pass
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError):
                # corrupt or stale entry: drop it and treat as a miss
                try:
                    os.remove(path)
                except OSError:
                    pass
            else:
                self._store_memory(key, blob)
                self.hits += 1
                self.disk_hits += 1
                return result, "disk"
        self.misses += 1
        return None

    def put(self, key: str, result) -> None:
        """Store a synthesis result under ``key`` in both tiers."""
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._store_memory(key, blob)
        if self.directory is not None:
            # atomic publish: never expose a half-written entry
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=".plan.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, self._path(key))
            except OSError:  # pragma: no cover - disk full etc.
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def _store_memory(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier with ``disk=True``)."""
        self._memory.clear()
        if disk and self.directory is not None:
            for entry in os.listdir(self.directory):
                if entry.endswith(".plan.pkl"):
                    try:
                        os.remove(os.path.join(self.directory, entry))
                    except OSError:
                        pass

    def describe(self) -> str:
        tiers = f"memory[{len(self._memory)}/{self.maxsize}]"
        if self.directory is not None:
            tiers += f" + disk[{self.directory}]"
        return (
            f"PlanCache({tiers}): {self.hits} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses, {self.evictions} evictions"
        )
