"""Zero-copy ndarray transport over POSIX shared memory.

The process backend's control traffic (message kinds, counters, retry
bookkeeping) is tiny, but its *payloads* are ndarrays: rank inputs on
load, halo/reduction pieces each superstep, outputs on collect.  Sending
those through a ``multiprocessing.Pipe`` costs a pickle serialization, a
kernel-buffer copy on each side, and a deserialization.  This module
replaces that with ``multiprocessing.shared_memory``: the sender writes
each array once into a fresh segment and ships a small picklable
descriptor; the receiver maps the segment and copies the arrays out.
Four-plus copies become two, and the pickle byte-stream vanishes.

Protocol
--------
:func:`pack_message` turns an arbitrary message tree (tuples/lists/
dicts/scalars/ndarrays) into either

* ``("raw", obj)`` -- no array at or above the size threshold; the
  object travels over the pipe unchanged; or
* ``("shm", seg_name, headers, tree)`` -- every qualifying ndarray was
  written into one shared-memory segment at a 64-byte-aligned offset.
  ``headers[k] = (offset, shape, dtype_str)`` and the tree holds
  ``("__shm__", k)`` placeholders where the arrays were.

:func:`unpack_message` inverts this: attach, copy the arrays out,
close, **unlink**.  Ownership transfers with the message -- the sender
closes its mapping (and un-registers it from the resource tracker, see
below) immediately after packing; the receiver always unlinks, so each
segment lives exactly one send/receive round trip.  Copy-on-receive is
deliberate: handing out views over the mapping would pin it open for
the lifetime of arbitrary downstream references (``BufferError`` on
close), while the copy keeps lifetimes trivial and still eliminates the
serialization entirely.

CPython quirk: ``SharedMemory`` registers the segment with the
``resource_tracker`` even when merely *attaching* (bpo-39959).  A
sender that closes without unlinking must therefore explicitly
un-register, or the tracker reports a spurious leak at interpreter
shutdown.  The receiver's ``unlink()`` un-registers naturally.

Placeholders use the reserved tuple ``("__shm__", k)``; the backend's
internal message vocabulary never produces that shape, and user arrays
are replaced before the walk recurses into them.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard exercised only where shm is absent
    from multiprocessing import resource_tracker, shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    SHM_AVAILABLE = False

__all__ = [
    "SHM_AVAILABLE",
    "DEFAULT_MIN_BYTES",
    "pack_message",
    "unpack_message",
    "segment_of",
    "unlink_segment",
]

#: Arrays smaller than this ride the pipe inside the descriptor; the
#: segment-per-message overhead only pays off past a few pages.
DEFAULT_MIN_BYTES = 32768

_ALIGN = 64  # cache-line alignment for each array's offset
_TAG = "__shm__"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _strip(obj: Any, arrays: List[np.ndarray], min_bytes: int) -> Any:
    """Replace qualifying ndarrays with placeholders, collecting them."""
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= min_bytes and not obj.dtype.hasobject:
            arrays.append(obj)
            return (_TAG, len(arrays) - 1)
        return obj
    if isinstance(obj, tuple):
        return tuple(_strip(x, arrays, min_bytes) for x in obj)
    if isinstance(obj, list):
        return [_strip(x, arrays, min_bytes) for x in obj]
    if isinstance(obj, dict):
        return {k: _strip(v, arrays, min_bytes) for k, v in obj.items()}
    return obj


def _fill(obj: Any, arrays: Sequence[np.ndarray]) -> Any:
    """Substitute recovered arrays back for their placeholders."""
    if isinstance(obj, tuple):
        if len(obj) == 2 and obj[0] == _TAG and isinstance(obj[1], int):
            return arrays[obj[1]]
        return tuple(_fill(x, arrays) for x in obj)
    if isinstance(obj, list):
        return [_fill(x, arrays) for x in obj]
    if isinstance(obj, dict):
        return {k: _fill(v, arrays) for k, v in obj.items()}
    return obj


def _untrack(seg) -> None:
    """Forget a segment we closed but did not unlink (bpo-39959)."""
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def pack_message(obj: Any, min_bytes: Optional[int] = DEFAULT_MIN_BYTES):
    """Pack a message for the pipe, side-loading large arrays into shm.

    Returns ``("raw", obj)`` when nothing qualifies (or shared memory is
    unavailable, or ``min_bytes`` is ``None`` -- the pipe-only mode),
    else ``("shm", seg_name, headers, tree)``.  The caller sends the
    returned value over the pipe as usual; the segment is already closed
    on this side and owned by the receiver.
    """
    if not SHM_AVAILABLE or min_bytes is None:
        return ("raw", obj)
    arrays: List[np.ndarray] = []
    tree = _strip(obj, arrays, min_bytes)
    if not arrays:
        return ("raw", obj)
    headers: List[Tuple[int, Tuple[int, ...], str]] = []
    offset = 0
    for a in arrays:
        offset = _align(offset)
        headers.append((offset, a.shape, a.dtype.str))
        offset += a.nbytes
    seg = shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        for a, (off, _, _) in zip(arrays, headers):
            dest = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=off)
            np.copyto(dest, a)
            del dest  # release the buffer export before close()
        name = seg.name
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    seg.close()
    _untrack(seg)
    return ("shm", name, headers, tree)


def unpack_message(msg) -> Any:
    """Recover the original message; unlinks the segment if there is one."""
    if msg[0] == "raw":
        return msg[1]
    _, name, headers, tree = msg
    seg = shared_memory.SharedMemory(name=name)
    try:
        arrays: List[np.ndarray] = []
        for off, shape, dtype_str in headers:
            count = int(np.prod(shape, dtype=np.int64))
            flat = np.frombuffer(
                seg.buf, dtype=np.dtype(dtype_str), count=count, offset=off
            )
            arrays.append(flat.reshape(shape).copy())
            del flat  # release the buffer export before close()
    finally:
        seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    return _fill(tree, arrays)


def segment_of(msg) -> Optional[str]:
    """The segment name a packed message owns, or ``None`` for raw ones."""
    if isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "shm":
        return msg[1]
    return None


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of an orphaned segment (dead receiver cleanup)."""
    if not SHM_AVAILABLE:
        return False
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with receiver
        pass
    return True
