"""Out-of-core execution simulation: paging between memory and disk.

Paper Section 4 (Data locality optimization): "If the space requirement
exceeds physical memory capacity, portions of the arrays must be moved
between disk and main memory as needed, in a way that maximizes reuse of
elements in memory."

This module measures that movement for a loop structure: every element
access from the interpreter's trace goes through a page-granular buffer
pool of bounded capacity with LRU replacement and write-back dirty
pages.  The resulting disk-read/write volumes are the measured
counterpart of the Section-6 cost model applied at the physical-memory
level, and the quantity the disk-level tile search minimizes.

Long simulations can checkpoint/restart: pass ``checkpoint_dir`` and an
interrupted run (crash, or injected via ``interrupt_after``) resumes
from the last completed top-level unit with bit-identical results *and*
I/O counters -- the pool's LRU state and statistics are part of the
snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.expr.indices import Bindings
from repro.engine.executor import FunctionImpl
from repro.codegen.interp import execute
from repro.codegen.loops import Alloc, Block, walk


@dataclass
class OOCStats:
    """Measured paging behaviour of one execution."""

    budget: int  # pool capacity in elements
    page: int  # page size in elements
    disk_reads: int = 0  # elements read from disk
    disk_writes: int = 0  # elements written back to disk
    evictions: int = 0
    accesses: int = 0
    per_array_reads: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def total_io(self) -> int:
        return self.disk_reads + self.disk_writes


class PagedBufferPool:
    """LRU pool of (array, page) entries with write-back accounting."""

    def __init__(
        self,
        budget_elements: int,
        page_elements: int,
        shapes: Mapping[str, Tuple[int, ...]],
    ) -> None:
        if budget_elements < page_elements:
            raise ValueError("budget must hold at least one page")
        if page_elements <= 0:
            raise ValueError("page size must be positive")
        self.capacity_pages = budget_elements // page_elements
        self.page = page_elements
        self.shapes = dict(shapes)
        self._pages: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self.stats = OOCStats(budget_elements, page_elements)

    def _flat(self, array: str, coords: Tuple[int, ...]) -> int:
        shape = self.shapes[array]
        flat = 0
        for c, n in zip(coords, shape):
            flat = flat * n + c
        return flat

    def access(self, array: str, coords: Tuple[int, ...], is_write: bool) -> None:
        self.stats.accesses += 1
        if array not in self.shapes:
            return  # scalars/unknowns: treat as register-resident
        key = (array, self._flat(array, coords) // self.page)
        pages = self._pages
        if key in pages:
            pages.move_to_end(key)
            if is_write:
                pages[key] = True
            return
        self.stats.disk_reads += self.page
        self.stats.per_array_reads[array] = (
            self.stats.per_array_reads.get(array, 0) + self.page
        )
        pages[key] = is_write
        if len(pages) > self.capacity_pages:
            _, dirty = pages.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.disk_writes += self.page

    def flush(self) -> None:
        """Write back every remaining dirty page."""
        for _, dirty in self._pages.items():
            if dirty:
                self.stats.disk_writes += self.page
        self._pages.clear()

    def get_state(self) -> dict:
        """Snapshot the resident set and counters for checkpointing."""
        s = self.stats
        return {
            "pages": list(self._pages.items()),
            "disk_reads": s.disk_reads,
            "disk_writes": s.disk_writes,
            "evictions": s.evictions,
            "accesses": s.accesses,
            "per_array_reads": dict(s.per_array_reads),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (LRU order included)."""
        self._pages = OrderedDict(state["pages"])
        s = self.stats
        s.disk_reads = state["disk_reads"]
        s.disk_writes = state["disk_writes"]
        s.evictions = state["evictions"]
        s.accesses = state["accesses"]
        s.per_array_reads = dict(state["per_array_reads"])


def array_shapes(
    block: Block,
    inputs: Mapping[str, np.ndarray],
    bindings: Optional[Bindings] = None,
) -> Dict[str, Tuple[int, ...]]:
    """Shapes of every array touched by a structure (allocs + inputs)."""
    shapes: Dict[str, Tuple[int, ...]] = {
        name: tuple(np.asarray(arr).shape) for name, arr in inputs.items()
    }
    for node in walk(block):
        if isinstance(node, Alloc):
            shapes[node.array] = tuple(
                _dim_extent(dim, bindings) for dim in node.dims
            )
    return shapes


def _dim_extent(dim, bindings) -> int:
    out = 1
    for var in dim:
        out *= var.extent(bindings)
    if len(dim) == 2 and dim[0].role == "tile" and dim[1].role == "intra":
        out = dim[0].index.extent(bindings)
    return out


def simulate_out_of_core(
    block: Block,
    inputs: Mapping[str, np.ndarray],
    budget_elements: int,
    page_elements: int = 8,
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    *,
    checkpoint_dir: Optional[str] = None,
    interrupt_after: Optional[int] = None,
    semiring: str = "plus_times",
) -> OOCStats:
    """Execute ``block`` with a bounded buffer pool; returns I/O stats.

    The computation itself is exact (the interpreter runs normally);
    only the *movement* implied by the access sequence is measured.
    The returned stats carry the final array environment in
    ``stats.arrays``.

    ``checkpoint_dir`` enables checkpoint/restart at top-level-unit
    granularity: an interrupted simulation re-invoked with the same
    directory resumes after the last completed unit, and the final
    results and I/O counters are bit-identical to an uninterrupted
    run.  ``interrupt_after=n`` injects an
    :class:`~repro.robustness.errors.InjectedFault` after ``n`` units
    complete (testing hook).
    """
    pool = PagedBufferPool(
        budget_elements, page_elements, array_shapes(block, inputs, bindings)
    )
    arrays = execute(
        block,
        inputs,
        bindings,
        functions,
        trace=pool.access,
        checkpoint=checkpoint_dir,
        interrupt_after=interrupt_after,
        extra_state=(pool.get_state, pool.set_state),
        semiring=semiring,
    )
    pool.flush()
    pool.stats.arrays = arrays
    return pool.stats
