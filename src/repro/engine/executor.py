"""Reference dense executor.

Evaluates expressions and formula sequences with ``numpy.einsum``.  This
is the *semantic oracle* of the repository: every transformation stage
(operation minimization, fusion, tiling, distribution) is validated by
comparing its output against this executor on random inputs.

Conventions
-----------
* The array stored for tensor ``T`` has its axes in the order of ``T``'s
  *declared* index signature.
* Results of :func:`evaluate_expression` have axes ordered by the sorted
  free-index tuple (``sorted(expr.free)``), matching the index order that
  :mod:`repro.opmin` gives temporaries.
* Function tensors are materialized on the fly by calling a registered
  callable on integer coordinate grids.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.expr.ast import Add, Expr, Mul, Program, Statement, Sum, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, Index, einsum_letters
from repro.kernels.einsum_cache import cached_einsum
from repro.robustness.errors import SpecError
from repro.semiring import get_semiring, require_unit_coef

#: Signature of a function-tensor implementation: called with integer
#: coordinate arrays (broadcastable), returns the element values.
FunctionImpl = Callable[..., np.ndarray]


def _materialize_function(
    ref: TensorRef,
    impl: FunctionImpl,
    bindings: Optional[Bindings],
) -> np.ndarray:
    """Evaluate a function tensor over the full index grid of ``ref``."""
    shape = tuple(i.extent(bindings) for i in ref.indices)
    grids = np.indices(shape)
    return np.asarray(impl(*grids), dtype=np.float64)


def _einsum_letters(indices: Sequence[Index]) -> Dict[Index, str]:
    """Shared label table (see :func:`repro.expr.indices.einsum_letters`)."""
    return einsum_letters(indices)


def evaluate_expression(
    expr: Expr,
    arrays: Mapping[str, np.ndarray],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    *,
    validate: bool = True,
    check_finite: bool = False,
    path_cache: bool = True,
    semiring: str = "plus_times",
) -> np.ndarray:
    """Evaluate ``expr`` to a dense array (axes: ``sorted(expr.free)``).

    ``arrays`` maps tensor names to their stored values; ``functions``
    maps function-tensor names to callables.

    ``validate`` checks every referenced array's presence, shape, and
    dtype up front (:func:`repro.robustness.validation.validate_env`),
    so failures name the offending tensor; ``check_finite`` additionally
    rejects NaN/Inf inputs.

    ``path_cache`` serves each contraction's einsum path from the
    process-wide cache (:mod:`repro.kernels.einsum_cache`) instead of
    re-planning per call -- bit-for-bit identical results, since
    ``optimize=True`` resolves to the same greedy path.  ``False``
    restores the re-planning behaviour (used as a benchmark baseline).

    ``semiring`` selects the scalar algebra (:mod:`repro.semiring`):
    terms evaluate through the semiring-aware einsum and fold into the
    result with the registered reduce op from an identity-element
    start.  ``check_finite`` only applies to the default algebra --
    tropical carriers legitimately hold ``inf``.
    """
    from repro.robustness.validation import validate_env

    sr = get_semiring(semiring)
    if not sr.is_default:
        check_finite = False  # inf is a legitimate tropical carrier value
    functions = functions or {}
    terms = flatten(expr)  # OverflowError propagates: caller's bug
    if validate:
        validate_env(
            arrays,
            (ref for _, _, refs in terms for ref in refs),
            bindings,
            stage="execution",
            check_finite=check_finite,
        )
    out_indices = tuple(sorted(expr.free))
    out_shape = tuple(i.extent(bindings) for i in out_indices)
    result = (
        np.zeros(out_shape)
        if sr.is_default
        else np.full(out_shape, sr.zero)
    )
    for coef, sum_indices, refs in terms:
        require_unit_coef(coef, sr, stage="execution")
        all_indices = tuple(
            sorted(set().union(*[set(r.indices) for r in refs]))
        )
        letters = _einsum_letters(all_indices)
        operands = []
        subscripts = []
        for ref in refs:
            if ref.tensor.is_function:
                impl = functions.get(ref.tensor.name)
                if impl is None:
                    raise SpecError(
                        f"no implementation registered for function "
                        f"{ref.tensor.name!r}",
                        stage="execution",
                        tensor=ref.tensor.name,
                    )
                operands.append(_materialize_function(ref, impl, bindings))
            else:
                try:
                    operands.append(np.asarray(arrays[ref.tensor.name]))
                except KeyError:
                    raise SpecError(
                        f"no array provided for tensor {ref.tensor.name!r}",
                        stage="execution",
                        tensor=ref.tensor.name,
                    ) from None
            subscripts.append("".join(letters[i] for i in ref.indices))
        out_sub = "".join(letters[i] for i in out_indices)
        spec = ",".join(subscripts) + "->" + out_sub
        if not sr.is_default:
            value = cached_einsum(spec, *operands, semiring=sr.name)
            result = sr.np_reduce(result, value)
        elif path_cache:
            value = cached_einsum(spec, *operands)
            result = result + coef * value
        else:
            value = np.einsum(spec, *operands, optimize=True)
            result = result + coef * value
    return result


def run_statements(
    statements: Sequence[Statement],
    inputs: Mapping[str, np.ndarray],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    *,
    path_cache: bool = True,
    semiring: str = "plus_times",
) -> Dict[str, np.ndarray]:
    """Execute a formula sequence; returns all arrays (inputs + produced).

    Produced arrays are stored with axes in the order of the result
    tensor's declared signature.  ``+=`` statements accumulate into an
    existing array (allocating zeros on first touch) -- under a
    non-default ``semiring`` the accumulation is the registered reduce
    op.  ``path_cache`` as in :func:`evaluate_expression`.
    """
    sr = get_semiring(semiring)
    env: Dict[str, np.ndarray] = {k: np.asarray(v) for k, v in inputs.items()}
    for stmt in statements:
        value = evaluate_expression(
            stmt.expr, env, bindings, functions, path_cache=path_cache,
            semiring=semiring,
        )
        # transpose from sorted-free order to declared result order
        sorted_order = tuple(sorted(stmt.result.indices))
        perm = tuple(sorted_order.index(i) for i in stmt.result.indices)
        value = np.transpose(value, perm) if perm else value
        name = stmt.result.name
        if stmt.accumulate:
            if name in env:
                env[name] = (
                    env[name] + value
                    if sr.is_default
                    else sr.np_reduce(env[name], value)
                )
            else:
                env[name] = value
        else:
            env[name] = value
    return env


def random_inputs(
    program: Program,
    bindings: Optional[Bindings] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Deterministic random arrays for every input tensor of a program."""
    rng = np.random.default_rng(seed)
    out: Dict[str, np.ndarray] = {}
    for tensor in program.inputs():
        out[tensor.name] = rng.standard_normal(tensor.shape(bindings))
    return out
