"""Counters collected by the execution substrates.

Every substrate (reference evaluator, generated loop code, simulated
parallel grid) reports its work through a :class:`Counters` instance so
that analytic cost models can be validated against *measured* quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Counters:
    """Mutable tally of work performed by an execution.

    Attributes
    ----------
    flops:
        Arithmetic operations (multiplies + adds), excluding function
        evaluation interiors.
    func_evals:
        Number of primitive-function (integral) element evaluations.
    func_ops:
        Operations spent inside function evaluations
        (``func_evals x compute_cost`` accumulated per call site).
    elements_allocated:
        Total elements of temporaries allocated.
    peak_elements:
        High-water mark of simultaneously-live temporary elements.
    bytes_sent:
        Inter-processor traffic (simulated grid only).
    messages:
        Message count (simulated grid only).
    """

    flops: int = 0
    func_evals: int = 0
    func_ops: int = 0
    elements_allocated: int = 0
    peak_elements: int = 0
    bytes_sent: int = 0
    messages: int = 0
    _live_elements: int = field(default=0, repr=False)

    @property
    def total_ops(self) -> int:
        """Arithmetic plus function-interior operations."""
        return self.flops + self.func_ops

    def allocate(self, elements: int) -> None:
        self.elements_allocated += elements
        self._live_elements += elements
        if self._live_elements > self.peak_elements:
            self.peak_elements = self._live_elements

    def release(self, elements: int) -> None:
        self._live_elements = max(0, self._live_elements - elements)

    def merge(self, other: "Counters") -> None:
        """Fold another tally into this one (peaks take the max)."""
        self.flops += other.flops
        self.func_evals += other.func_evals
        self.func_ops += other.func_ops
        self.elements_allocated += other.elements_allocated
        self.peak_elements = max(self.peak_elements, other.peak_elements)
        self.bytes_sent += other.bytes_sent
        self.messages += other.messages

    def as_dict(self) -> Dict[str, int]:
        return {
            "flops": self.flops,
            "func_evals": self.func_evals,
            "func_ops": self.func_ops,
            "total_ops": self.total_ops,
            "elements_allocated": self.elements_allocated,
            "peak_elements": self.peak_elements,
            "bytes_sent": self.bytes_sent,
            "messages": self.messages,
        }
