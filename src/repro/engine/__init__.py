"""Execution substrates: reference evaluator, machine model, counters,
and the simulated parallel processor grid."""

from repro.engine.counters import Counters
from repro.engine.executor import (
    evaluate_expression,
    random_inputs,
    run_statements,
)
from repro.engine.machine import MachineModel
from repro.engine.outofcore import (
    OOCStats,
    PagedBufferPool,
    simulate_out_of_core,
)

__all__ = [
    "Counters",
    "evaluate_expression",
    "random_inputs",
    "run_statements",
    "MachineModel",
    "OOCStats",
    "PagedBufferPool",
    "simulate_out_of_core",
]
