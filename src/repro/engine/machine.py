"""Machine model: memory hierarchy capacities and access costs.

The synthesis system's later stages need to know, for each level of the
memory hierarchy, how many array elements fit and what a miss costs
(paper Section 6: "the optimum value of B will clearly depend on the
cost of access at the various levels of the memory hierarchy").

Capacities are in *elements* (8-byte doubles) to keep the arithmetic in
the same units as array sizes throughout the repository.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy.

    ``capacity`` is the number of elements that fit; ``miss_cost`` is the
    cost (in arithmetic-operation units) of servicing one miss from the
    level below.
    """

    name: str
    capacity: int
    miss_cost: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.miss_cost < 0:
            raise ValueError(f"{self.name}: miss cost must be >= 0")


@dataclass(frozen=True)
class MachineModel:
    """Cache / physical memory / disk hierarchy plus flop rate.

    The defaults describe a machine of the paper's era scaled to element
    counts: 32K-element L2-ish cache, 16M-element physical memory,
    2G-element disk.  ``flop_cost`` is 1.0 by construction (costs are in
    op units).
    """

    cache: MemoryLevel = MemoryLevel("cache", 32 * 1024, 8.0)
    memory: MemoryLevel = MemoryLevel("memory", 16 * 1024 * 1024, 512.0)
    disk: MemoryLevel = MemoryLevel("disk", 2 * 1024 * 1024 * 1024, 100_000.0)
    flop_cost: float = 1.0

    def level(self, name: str) -> MemoryLevel:
        """Look a level up by name ('cache' | 'memory' | 'disk')."""
        try:
            return {"cache": self.cache, "memory": self.memory, "disk": self.disk}[
                name
            ]
        except KeyError:
            raise ValueError(f"unknown memory level {name!r}") from None

    def fits_in(self, elements: int, level: str) -> bool:
        """Whether ``elements`` fit entirely within the named level."""
        return elements <= self.level(level).capacity


#: A deliberately tiny machine for tests: makes capacity effects visible
#: at toy problem sizes.
TOY_MACHINE = MachineModel(
    cache=MemoryLevel("cache", 64, 8.0),
    memory=MemoryLevel("memory", 4096, 512.0),
    disk=MemoryLevel("disk", 262144, 100_000.0),
)
