"""Sparse reference executor.

Evaluates contraction expressions by iterating *stored nonzeros* instead
of dense iteration spaces.  Each flat term (coefficient, summation
indices, factor references) is computed as a multi-way hash join over
the factors' coordinate lists:

* factors are visited in ascending-nonzero-count order; each factor is
  pre-hashed on the subset of its indices already bound by earlier
  factors (*coordinate merge* for products);
* full matches accumulate ``coef * prod(values)`` into a dictionary
  keyed by the output coordinates -- summation indices simply do not
  appear in the key (*hash-accumulate* for contractions).

The work performed is proportional to the number of matching nonzero
combinations, not to the dense iteration space: for fill ``p`` per
factor the expected scalar multiply-add count shrinks by roughly the
product of the fills, which is exactly the planning estimate
:func:`repro.opmin.cost.term_op_count` makes under ``sparse_aware=True``.

Semantics mirror :mod:`repro.engine.executor` (the dense oracle) --
same axis conventions, same function-tensor protocol, same ``+=``
accumulation -- so the two can be compared ``allclose`` on any program.
Measured multiply-adds are tallied into the standard
:class:`repro.engine.counters.Counters` (``flops``/``func_evals``).

Semirings: under a non-default algebra (:mod:`repro.semiring`) the
*stored-entry* predicate is ``value != semiring.zero`` -- for
``min_plus`` an absent edge is ``inf`` (droppable annihilator) while a
``0.0`` diagonal entry is the multiplicative identity and **must** be
kept, exactly inverted from the classical convention.  Because
:class:`COOTensor` canonicalization hard-codes the classical
"no stored zeros" rule, non-default operands are compressed into a
private coordinate container instead; join products fold with the
combine op and matches accumulate with the reduce op from an
identity-element start.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.counters import Counters
from repro.engine.executor import FunctionImpl, _materialize_function
from repro.expr.ast import Expr, Program, Statement, TensorRef
from repro.expr.canonical import flatten
from repro.expr.indices import Bindings, Index
from repro.robustness.errors import SpecError
from repro.semiring import Semiring, get_semiring, require_unit_coef
from repro.sparse.formats import COOTensor, as_coo, as_dense


class _Entries:
    """Coordinate list of one operand's semiring-stored entries.

    Duck-compatible with the ``coords``/``values``/``nnz`` surface the
    join uses.  Exists because :class:`COOTensor` canonicalization drops
    stored ``0.0`` values -- under ``min_plus`` those are identity
    elements that must survive compression.
    """

    __slots__ = ("coords", "values", "nnz")

    def __init__(self, coords: np.ndarray, values: np.ndarray) -> None:
        self.coords = coords
        self.values = values
        self.nnz = len(values)


def _compress(dense: np.ndarray, sr: Semiring) -> _Entries:
    """Stored entries of a dense array: everything ``!= sr.zero``."""
    dense = np.asarray(dense, dtype=np.float64)
    mask = dense != sr.zero
    coords = np.argwhere(mask)
    if dense.ndim == 0:
        coords = np.zeros((1 if mask else 0, 0), dtype=np.int64)
        values = dense.reshape(1)[: len(coords)]
    else:
        values = dense[tuple(coords.T)] if coords.size else dense.ravel()[:0]
    return _Entries(coords, values)


def _ref_as_coo(
    ref: TensorRef,
    arrays: Mapping[str, object],
    bindings: Optional[Bindings],
    functions: Mapping[str, FunctionImpl],
    counters: Counters,
    sr: Semiring,
):
    """Stored entries of one factor (function tensors materialize).

    Returns a :class:`COOTensor` under ``plus_times``; under any other
    algebra, a :class:`_Entries` compressed with the semiring-aware
    predicate (sparse containers densify first: their absent entries
    are classical zeros, which are ordinary carrier values there).
    """
    if ref.tensor.is_function:
        impl = functions.get(ref.tensor.name)
        if impl is None:
            raise SpecError(
                f"no implementation registered for function "
                f"{ref.tensor.name!r}",
                stage="execution",
                tensor=ref.tensor.name,
            )
        dense = _materialize_function(ref, impl, bindings)
        counters.func_evals += dense.size
        counters.func_ops += dense.size * ref.tensor.compute_cost
        if not sr.is_default:
            return _compress(dense, sr)
        return COOTensor.from_dense(dense)
    try:
        stored = arrays[ref.tensor.name]
    except KeyError:
        raise SpecError(
            f"no array provided for tensor {ref.tensor.name!r}",
            stage="execution",
            tensor=ref.tensor.name,
        ) from None
    if not sr.is_default:
        return _compress(as_dense(stored), sr)
    return as_coo(stored)


def _join_term(
    coef: float,
    refs: Sequence[TensorRef],
    operands: Sequence[object],
    out_indices: Tuple[Index, ...],
    acc: Dict[Tuple[int, ...], float],
    counters: Counters,
    sr: Semiring,
) -> None:
    """Multi-way hash join of one product term into the accumulator."""
    # visit small factors first: they bind indices cheaply and prune early
    order = sorted(range(len(refs)), key=lambda k: operands[k].nnz)
    bound: set = set()
    plans: List[Tuple[TensorRef, Dict, List[int], List[Index]]] = []
    for k in order:
        ref, coo = refs[k], operands[k]
        key_pos = [
            p for p, idx in enumerate(ref.indices) if idx in bound
        ]
        # pre-hash this factor's rows on the already-bound positions
        table: Dict[Tuple[int, ...], List[Tuple[np.ndarray, float]]] = {}
        for row, value in zip(coo.coords, coo.values):
            key = tuple(int(row[p]) for p in key_pos)
            table.setdefault(key, []).append((row, value))
        plans.append((ref, table, key_pos, list(ref.indices)))
        bound |= set(ref.indices)

    n = len(plans)
    muls_per_match = max(n - 1, 0) + (0 if coef in (1.0, -1.0) else 1)
    if not sr.is_default:
        require_unit_coef(coef, sr, stage="execution")
    combine = sr.py_combine
    reduce_ = sr.py_reduce

    def descend(depth: int, env: Dict[Index, int], product: float) -> None:
        if depth == n:
            key = tuple(env[i] for i in out_indices)
            if sr.is_default:
                acc[key] = acc.get(key, 0.0) + coef * product
            else:
                acc[key] = reduce_(acc.get(key, sr.zero), product)
            counters.flops += muls_per_match + 1
            return
        ref, table, key_pos, indices = plans[depth]
        key = tuple(env[indices[p]] for p in key_pos)
        for row, value in table.get(key, ()):
            new_env = env
            added: List[Index] = []
            consistent = True
            for p, idx in enumerate(indices):
                coord = int(row[p])
                known = new_env.get(idx)
                if known is None:
                    if new_env is env:
                        new_env = dict(env)
                    new_env[idx] = coord
                    added.append(idx)
                elif known != coord:
                    consistent = False
                    break
            if consistent:
                descend(
                    depth + 1,
                    new_env,
                    product * value
                    if sr.is_default
                    else combine(product, value),
                )

    descend(0, {}, 1.0 if sr.is_default else sr.one)


def evaluate_expression(
    expr: Expr,
    arrays: Mapping[str, object],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    counters: Optional[Counters] = None,
    *,
    validate: bool = True,
    check_finite: bool = False,
    semiring: str = "plus_times",
) -> np.ndarray:
    """Evaluate ``expr`` by nonzero iteration (axes: ``sorted(expr.free)``).

    ``arrays`` values may be dense ndarrays, :class:`COOTensor`, or
    :class:`CSFTensor` -- dense operands are scanned once to coordinate
    form (their zeros then cost nothing downstream).

    ``validate`` checks presence/shape/dtype of every referenced array
    up front so failures name the offending tensor (sparse containers
    are checked through their ``shape``/``values``).

    A non-default ``semiring`` switches the stored-entry predicate to
    ``!= semiring.zero`` and the join arithmetic to combine/reduce;
    ``check_finite`` is skipped there (``inf`` identities are data).
    """
    from repro.robustness.validation import validate_env

    sr = get_semiring(semiring)
    if not sr.is_default:
        check_finite = False
    functions = functions or {}
    counters = counters if counters is not None else Counters()
    terms = flatten(expr)
    if validate:
        validate_env(
            arrays,
            (ref for _, _, refs in terms for ref in refs),
            bindings,
            stage="execution",
            check_finite=check_finite,
        )
    out_indices = tuple(sorted(expr.free))
    out_shape = tuple(i.extent(bindings) for i in out_indices)
    acc: Dict[Tuple[int, ...], float] = {}
    for coef, _sum_indices, refs in terms:
        operands = [
            _ref_as_coo(ref, arrays, bindings, functions, counters, sr)
            for ref in refs
        ]
        _join_term(coef, refs, operands, out_indices, acc, counters, sr)
    result = (
        np.zeros(out_shape)
        if sr.is_default
        else np.full(out_shape, sr.zero)
    )
    for key, value in acc.items():
        if sr.is_default:
            result[key] += value
        else:
            result[key] = value  # acc keys are unique; start is sr.zero
    return result


def run_statements(
    statements: Sequence[Statement],
    inputs: Mapping[str, object],
    bindings: Optional[Bindings] = None,
    functions: Optional[Mapping[str, FunctionImpl]] = None,
    counters: Optional[Counters] = None,
    *,
    semiring: str = "plus_times",
) -> Dict[str, np.ndarray]:
    """Execute a formula sequence sparsely; returns dense arrays.

    Mirrors :func:`repro.engine.executor.run_statements`: produced
    arrays use the result tensor's declared axis order and ``+=``
    accumulates (the registered reduce op under a non-default
    ``semiring``).  Inputs may be sparse tensors; the returned
    environment is dense for interchangeability with the dense
    substrates (intermediates are re-compressed on their next sparse
    use, keeping *dynamic* zeros out of later joins).
    """
    sr = get_semiring(semiring)
    counters = counters if counters is not None else Counters()
    env: Dict[str, object] = dict(inputs)
    for stmt in statements:
        value = evaluate_expression(
            stmt.expr, env, bindings, functions, counters,
            semiring=semiring,
        )
        sorted_order = tuple(sorted(stmt.result.indices))
        perm = tuple(sorted_order.index(i) for i in stmt.result.indices)
        value = np.transpose(value, perm) if perm else value
        name = stmt.result.name
        if stmt.accumulate and name in env:
            env[name] = (
                as_dense(env[name]) + value
                if sr.is_default
                else sr.np_reduce(as_dense(env[name]), value)
            )
        else:
            env[name] = value
    return {k: as_dense(v) for k, v in env.items()}


def random_sparse_inputs(
    program: Program,
    bindings: Optional[Bindings] = None,
    seed: int = 0,
) -> Dict[str, COOTensor]:
    """Deterministic random COO inputs honoring each tensor's declared
    fill (dense tensors get fill 1.0 -- every element stored)."""
    out: Dict[str, COOTensor] = {}
    for k, tensor in enumerate(program.inputs()):
        out[tensor.name] = COOTensor.random(
            tensor.shape(bindings), tensor.fill, seed=seed * 7919 + k
        )
    return out
