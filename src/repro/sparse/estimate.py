"""Dense-versus-sparse planning estimates per statement.

The compilation path needs to report (and the dispatch route to decide
on) what declared sparsity buys: expected scalar multiply-adds under the
independence assumption of :func:`repro.opmin.cost.term_op_count`, and
storage footprints comparing dense element counts against COO words
(``nnz * (order + 1)``).

All numbers are *planning estimates* from declared fills -- measured
counts come from running :mod:`repro.sparse.executor` with counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.expr.ast import Statement
from repro.expr.indices import Bindings
from repro.expr.tensor import Tensor
from repro.opmin.cost import statement_op_count


def is_sparse_tensor(tensor: Tensor) -> bool:
    """Declared sparse: annotated ``sparse(fill)`` with fill < 1."""
    return tensor.sparsity == "sparse" and tensor.fill < 1.0


def is_sparse_statement(stmt: Statement) -> bool:
    """True when any referenced operand is declared sparse."""
    return any(is_sparse_tensor(ref.tensor) for ref in stmt.expr.refs())


def has_sparse_operands(statements: Sequence[Statement]) -> bool:
    return any(is_sparse_statement(s) for s in statements)


def _tensor_stored_words(tensor: Tensor, bindings: Optional[Bindings]) -> int:
    """Estimated storage words: COO footprint for sparse tensors, dense
    element count otherwise (function tensors store nothing)."""
    if tensor.is_function:
        return 0
    if is_sparse_tensor(tensor):
        nnz = max(1, int(tensor.size(bindings) * tensor.fill))
        return nnz * (tensor.order + 1)
    return tensor.size(bindings)


@dataclass(frozen=True)
class SparsityEstimate:
    """Dense-vs-sparse estimate for one statement."""

    result: str
    dense_ops: int
    sparse_ops: int
    dense_memory: int
    sparse_memory: int

    @property
    def op_reduction(self) -> float:
        """Dense/sparse op ratio (1.0 when sparsity buys nothing)."""
        return self.dense_ops / max(1, self.sparse_ops)

    def describe(self) -> str:
        return (
            f"{self.result}: ops {self.dense_ops:,} -> {self.sparse_ops:,} "
            f"({self.op_reduction:,.1f}x), memory words "
            f"{self.dense_memory:,} -> {self.sparse_memory:,}"
        )


def statement_sparsity_estimate(
    stmt: Statement, bindings: Optional[Bindings] = None
) -> SparsityEstimate:
    """Estimate one statement's dense and sparse op counts and operand
    storage (result storage counts as dense on both sides -- results
    are materialized densely by the reference substrates)."""
    dense_ops = statement_op_count(stmt, bindings)
    sparse_ops = statement_op_count(stmt, bindings, sparse_aware=True)
    operands = {}
    for ref in stmt.expr.refs():
        operands.setdefault(ref.tensor.name, ref.tensor)
    result_words = stmt.result.size(bindings)
    dense_memory = result_words + sum(
        t.size(bindings) for t in operands.values() if not t.is_function
    )
    sparse_memory = result_words + sum(
        _tensor_stored_words(t, bindings) for t in operands.values()
    )
    return SparsityEstimate(
        stmt.result.name, dense_ops, sparse_ops, dense_memory, sparse_memory
    )


def sequence_sparsity_estimates(
    statements: Sequence[Statement], bindings: Optional[Bindings] = None
) -> Dict[str, SparsityEstimate]:
    """Per-statement estimates keyed by result name (later assignments
    to the same name overwrite -- formula sequences are single
    assignment)."""
    return {
        s.result.name: statement_sparsity_estimate(s, bindings)
        for s in statements
    }
