"""Sparse tensor subsystem: storage formats, nonzero-iterating
execution, and sparsity planning estimates.

The high-level language has always *declared* sparsity
(``tensor W(a,b) sparse(0.05);``); this package makes the declaration
real end to end:

* :mod:`repro.sparse.formats` -- COO and CSF storage with dense
  round-trip and random generation at a target fill;
* :mod:`repro.sparse.executor` -- a reference executor that evaluates
  expressions by hash-joining stored nonzeros, validated against the
  dense einsum oracle;
* :mod:`repro.sparse.estimate` -- per-statement dense-vs-sparse
  op-count and memory estimates driving reports and dispatch.

The compilation path consumes it in two places: operation minimization
scales costs by declared fills (``SynthesisConfig.sparse_aware``), and
code generation dispatches statements with sparse operands to this
executor (:mod:`repro.codegen.dispatch`) while dense statements keep
the loop-IR path.
"""

from repro.sparse.formats import (
    COOTensor,
    CSFTensor,
    as_coo,
    as_dense,
)
from repro.sparse.executor import (
    evaluate_expression,
    random_sparse_inputs,
    run_statements,
)
from repro.sparse.estimate import (
    SparsityEstimate,
    has_sparse_operands,
    is_sparse_statement,
    is_sparse_tensor,
    sequence_sparsity_estimates,
    statement_sparsity_estimate,
)

__all__ = [
    "COOTensor",
    "CSFTensor",
    "as_coo",
    "as_dense",
    "evaluate_expression",
    "run_statements",
    "random_sparse_inputs",
    "SparsityEstimate",
    "statement_sparsity_estimate",
    "sequence_sparsity_estimates",
    "is_sparse_tensor",
    "is_sparse_statement",
    "has_sparse_operands",
]
