"""Sparse tensor storage formats.

The high-level language declares sparsity (``tensor W(a,b) sparse(0.05);``)
but the dense substrates ignore it at execution time.  This module makes
the declaration *physical* with two classic formats:

* :class:`COOTensor` -- coordinate format: one ``(nnz, order)`` integer
  coordinate matrix plus a value vector.  Canonical form (coordinates
  sorted lexicographically, duplicates summed, explicit zeros dropped)
  makes equality and merging well defined.  This is the exchange format
  of the subsystem: everything converts to and from it.
* :class:`CSFTensor` -- a compressed sparse fiber hierarchy (the
  generalization of CSR to arbitrary order used by SPLATT/TACO-style
  systems): level ``d`` stores the distinct index values of dimension
  ``d`` grouped under their parent fiber, with a pointer array
  delimiting each group.  Storage is proportional to the number of
  distinct prefixes instead of ``nnz * order``.

Both formats support dense round-trip (``from_dense`` / ``to_dense``),
random generation at a target fill, and nonzero iteration -- the
primitives the sparse reference executor (:mod:`repro.sparse.executor`)
is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np


def _canonicalize(
    coords: np.ndarray, values: np.ndarray, shape: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort lexicographically, sum duplicates, drop explicit zeros."""
    coords = np.asarray(coords, dtype=np.int64).reshape(len(values), len(shape))
    values = np.asarray(values, dtype=np.float64)
    if coords.size and (
        (coords < 0).any() or (coords >= np.asarray(shape)).any()
    ):
        raise ValueError("coordinates out of bounds for shape")
    if len(values) == 0:
        return coords, values
    if len(shape) == 0:
        total = float(values.sum())
        if total == 0.0:
            return coords[:0], values[:0]
        return coords[:1], np.asarray([total])
    # np.lexsort sorts by the *last* key first: feed columns reversed
    order = np.lexsort(tuple(coords[:, d] for d in reversed(range(len(shape)))))
    coords, values = coords[order], values[order]
    keep = np.ones(len(values), dtype=bool)
    same = (coords[1:] == coords[:-1]).all(axis=1)
    if same.any():
        # accumulate runs of equal coordinates into their first row
        out_coords: List[np.ndarray] = []
        out_values: List[float] = []
        k = 0
        while k < len(values):
            j = k + 1
            total = values[k]
            while j < len(values) and (coords[j] == coords[k]).all():
                total += values[j]
                j += 1
            out_coords.append(coords[k])
            out_values.append(total)
            k = j
        coords = np.asarray(out_coords, dtype=np.int64)
        values = np.asarray(out_values, dtype=np.float64)
        keep = np.ones(len(values), dtype=bool)
    keep &= values != 0.0
    return coords[keep], values[keep]


@dataclass(frozen=True)
class COOTensor:
    """Coordinate-format sparse tensor in canonical form.

    ``coords`` is ``(nnz, order)`` int64; ``values`` is ``(nnz,)``
    float64.  Rows are sorted lexicographically with no duplicate
    coordinates and no stored zeros.
    """

    shape: Tuple[int, ...]
    coords: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        coords, values = _canonicalize(self.coords, self.values, self.shape)
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "values", values)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "COOTensor":
        array = np.asarray(array, dtype=np.float64)
        coords = np.argwhere(array != 0.0)
        values = array[tuple(coords.T)] if coords.size else array.ravel()[:0]
        if array.ndim == 0:
            coords = np.zeros((1 if array != 0.0 else 0, 0), dtype=np.int64)
            values = array.reshape(1)[: len(coords)]
        return cls(array.shape, coords, values)

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        fill: float,
        seed: int = 0,
    ) -> "COOTensor":
        """Exactly ``round(fill * size)`` distinct nonzeros, standard
        normal values (resampled away from exact zero)."""
        if not 0.0 < fill <= 1.0:
            raise ValueError(f"fill must be in (0, 1], got {fill}")
        shape = tuple(int(s) for s in shape)
        size = int(np.prod(shape)) if shape else 1
        nnz = max(1, round(fill * size))
        rng = np.random.default_rng(seed)
        flat = rng.choice(size, size=nnz, replace=False)
        coords = np.stack(
            np.unravel_index(flat, shape), axis=1
        ) if shape else np.zeros((nnz, 0), dtype=np.int64)
        values = rng.standard_normal(nnz)
        values[values == 0.0] = 1.0
        return cls(shape, coords, values)

    # -- views -------------------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def fill(self) -> float:
        """Actual stored fraction (1.0 for a scalar holding a value)."""
        size = int(np.prod(self.shape)) if self.shape else 1
        return self.nnz / size if size else 0.0

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        if self.nnz:
            if self.shape:
                out[tuple(self.coords.T)] = self.values
            else:
                out[()] = self.values[0]
        return out

    def nonzeros(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        """Iterate ``(coordinate_tuple, value)`` in lexicographic order."""
        for row, value in zip(self.coords, self.values):
            yield tuple(int(c) for c in row), float(value)

    def storage_words(self) -> int:
        """Stored words: one value plus ``order`` coordinates per nonzero."""
        return self.nnz * (self.order + 1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.coords, other.coords)
            and np.array_equal(self.values, other.values)
        )


@dataclass(frozen=True)
class CSFTensor:
    """Compressed-sparse-fiber hierarchy.

    ``ids[d]`` holds the index values at tree level ``d`` (dimension
    ``d``); ``ptrs[d]`` segments ``ids[d]`` by parent node (``ptrs[0]``
    is the trivial root segmentation ``[0, len(ids[0])]``).  ``values``
    aligns with the deepest level ``ids[order-1]``.
    """

    shape: Tuple[int, ...]
    ptrs: Tuple[np.ndarray, ...]
    ids: Tuple[np.ndarray, ...]
    values: np.ndarray

    # -- construction ------------------------------------------------------

    @classmethod
    def from_coo(cls, coo: COOTensor) -> "CSFTensor":
        order = coo.order
        coords, values = coo.coords, coo.values
        ids: List[np.ndarray] = []
        ptrs: List[np.ndarray] = []
        segments: List[Tuple[int, int]] = [(0, coo.nnz)]
        for level in range(order):
            level_ids: List[int] = []
            level_ptr: List[int] = [0]
            next_segments: List[Tuple[int, int]] = []
            for start, end in segments:
                k = start
                while k < end:
                    j = k + 1
                    while j < end and coords[j, level] == coords[k, level]:
                        j += 1
                    level_ids.append(int(coords[k, level]))
                    next_segments.append((k, j))
                    k = j
                level_ptr.append(len(level_ids))
            ids.append(np.asarray(level_ids, dtype=np.int64))
            ptrs.append(np.asarray(level_ptr, dtype=np.int64))
            segments = next_segments
        return cls(coo.shape, tuple(ptrs), tuple(ids), values.copy())

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSFTensor":
        return cls.from_coo(COOTensor.from_dense(array))

    @classmethod
    def random(
        cls, shape: Sequence[int], fill: float, seed: int = 0
    ) -> "CSFTensor":
        return cls.from_coo(COOTensor.random(shape, fill, seed))

    # -- views -------------------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_coo(self) -> COOTensor:
        coords = np.zeros((self.nnz, self.order), dtype=np.int64)

        def expand(level: int, node: int, prefix: List[int]) -> None:
            start, end = self.ptrs[level][node], self.ptrs[level][node + 1]
            for child in range(start, end):
                row = prefix + [int(self.ids[level][child])]
                if level == self.order - 1:
                    coords[child] = row
                else:
                    expand(level + 1, child, row)

        if self.order and self.nnz:
            expand(0, 0, [])
        return COOTensor(self.shape, coords, self.values.copy())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def nonzeros(self) -> Iterator[Tuple[Tuple[int, ...], float]]:
        yield from self.to_coo().nonzeros()

    def storage_words(self) -> int:
        """Stored words across all pointer, id, and value arrays."""
        return (
            sum(len(p) for p in self.ptrs)
            + sum(len(i) for i in self.ids)
            + self.nnz
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSFTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and len(self.ids) == len(other.ids)
            and all(np.array_equal(a, b) for a, b in zip(self.ids, other.ids))
            and all(np.array_equal(a, b) for a, b in zip(self.ptrs, other.ptrs))
            and np.array_equal(self.values, other.values)
        )


SparseTensor = (COOTensor, CSFTensor)
"""Runtime-checkable tuple of the sparse storage classes."""


def as_coo(value) -> COOTensor:
    """Coerce a dense array or either sparse format to canonical COO."""
    if isinstance(value, COOTensor):
        return value
    if isinstance(value, CSFTensor):
        return value.to_coo()
    return COOTensor.from_dense(np.asarray(value))


def as_dense(value) -> np.ndarray:
    """Coerce a dense array or either sparse format to a dense ndarray."""
    if isinstance(value, (COOTensor, CSFTensor)):
        return value.to_dense()
    return np.asarray(value, dtype=np.float64)
