"""Timed micro-runs with warmup, repetition, and outlier rejection.

The analytical cost models rank candidates; this module ranks them by
what actually happens on the hardware.  The protocol per candidate:

1. **warmup** runs (not timed) populate caches -- numpy's einsum path
   cache, the buffer arena, CPU caches, the OS page cache;
2. **repeats** timed runs through ``time.perf_counter_ns``;
3. **outlier rejection**: samples above ``3x`` the median (a GC pause,
   a scheduler preemption) are discarded and the median of the
   survivors is the candidate's score.  The median is always a
   survivor, so rejection can never empty the sample set.

Every run (warmup included) charges one node against the shared
:class:`~repro.robustness.budget.BudgetTracker` under the ``"tuning"``
stage, so a wall-clock budget bounds measurement like any other search
stage; :class:`~repro.robustness.errors.BudgetExceeded` propagates to
the autotune stage, which degrades to the analytical choice.

The clock is injectable (``timer``) so tests and the CI determinism
check can drive the whole subsystem with a deterministic fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.robustness.budget import BudgetTracker

__all__ = ["Measurement", "Measurer", "median"]

#: samples above this multiple of the median are rejected as outliers
OUTLIER_FACTOR = 3.0


def median(values: List[float]) -> float:
    """The sample median (mean of the middle pair for even counts)."""
    if not values:
        raise ValueError("median of an empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class Measurement:
    """One candidate's timing summary."""

    label: str
    samples_ns: List[int] = field(default_factory=list)
    median_ns: float = 0.0
    rejected: int = 0
    runs: int = 0  # total executions, warmup included

    @property
    def median_ms(self) -> float:
        return self.median_ns / 1e6


class Measurer:
    """Runs candidates under the common timing protocol.

    ``warmup``/``repeats`` set the per-candidate run counts; ``timer``
    is a ``perf_counter_ns``-compatible clock; ``tracker`` (optional)
    is the budget the runs are charged against.  ``total_runs`` counts
    every execution across all candidates -- the stage report exposes it
    so callers can assert that a warm TuningDB hit measured nothing.
    """

    def __init__(
        self,
        warmup: int = 1,
        repeats: int = 5,
        timer: Callable[[], int] = time.perf_counter_ns,
        tracker: Optional[BudgetTracker] = None,
    ) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.warmup = warmup
        self.repeats = repeats
        self.timer = timer
        self.tracker = tracker
        self.total_runs = 0

    def _tick(self) -> None:
        if self.tracker is not None:
            self.tracker.tick(1, stage="tuning")

    def measure(self, label: str, fn: Callable[[], object]) -> Measurement:
        """Time ``fn`` under the warmup/repeat/reject protocol.

        Raises :class:`~repro.robustness.errors.BudgetExceeded` as soon
        as the budget runs out -- partial samples are discarded and the
        caller falls back to its analytical choice.
        """
        for _ in range(self.warmup):
            self._tick()
            fn()
            self.total_runs += 1
        samples: List[int] = []
        for _ in range(self.repeats):
            self._tick()
            start = self.timer()
            fn()
            samples.append(self.timer() - start)
            self.total_runs += 1
        raw_median = median([float(s) for s in samples])
        kept = [
            float(s) for s in samples if s <= OUTLIER_FACTOR * raw_median
        ]
        return Measurement(
            label=label,
            samples_ns=samples,
            median_ns=median(kept),
            rejected=len(samples) - len(kept),
            runs=self.warmup + len(samples),
        )
