"""The persistent tuning database.

Measured tuning decisions are only meaningful on the machine that
produced them, for the exact program and configuration that was tuned.
A :class:`TuningDB` therefore stores each record under a
content-addressed key (the same sha256 fingerprint discipline as
:mod:`repro.runtime.plan_cache`):

    sha256( package version
          + configuration fingerprint
          + canonical program text
          + machine signature )

The **machine signature** (:func:`machine_signature`) captures what the
measurements depended on: the CPU count, the configured cache/memory
capacities from :class:`~repro.engine.machine.MachineModel`, and the
numpy version (its kernels do the measured work).  A record is *never*
applied under a different signature -- the signature is part of the key
*and* re-validated against the stored copy on every hit, so even a file
copied between machines reads as a miss.

Storage mirrors the plan cache: a bounded in-memory LRU over an
optional on-disk tier.  Disk records are canonical JSON (sorted keys,
fixed separators, trailing newline) written atomically, so two tuning
runs that reach the same decisions produce **byte-identical** files --
the property the CI determinism check asserts.  Records deliberately
contain decisions and trial counts but no raw timings: timings are
reported in the stage report, where run-to-run noise belongs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["TuningDB", "machine_signature", "tuning_key"]


def machine_signature(machine=None) -> Dict[str, object]:
    """What the measurements depend on: cpu count, the configured
    memory-hierarchy capacities, and the numpy version.

    ``machine`` is the :class:`~repro.engine.machine.MachineModel` the
    synthesis ran with (its capacities steer the analytical choices the
    measurements compete against); ``None`` uses the default model.
    """
    import numpy as np

    from repro.engine.machine import MachineModel

    machine = machine or MachineModel()
    return {
        "cpu_count": os.cpu_count() or 1,
        "cache_elements": machine.cache.capacity,
        "memory_elements": machine.memory.capacity,
        "numpy": np.__version__,
    }


def _canonical(record: Dict[str, object]) -> str:
    """Canonical JSON text: sorted keys, fixed separators, newline."""
    return json.dumps(record, sort_keys=True, indent=2) + "\n"


def tuning_key(program, config, signature: Dict[str, object]) -> str:
    """Content-addressed key of (program, config, machine, version)."""
    from repro import __version__
    from repro.expr.printer import program_to_source
    from repro.runtime.plan_cache import config_fingerprint

    payload = "\n".join(
        [
            __version__,
            config_fingerprint(config),
            program_to_source(program),
            json.dumps(signature, sort_keys=True),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TuningDB:
    """In-memory LRU + optional on-disk store of tuning records.

    ``maxsize`` bounds the in-memory entry count; ``directory`` enables
    the persistent tier (one ``<key>.tune.json`` file per record,
    published atomically).  Hits promote disk records back into memory.
    A record whose stored signature or package version disagrees with
    the caller's is treated as a miss (and counted in ``stale``).
    """

    def __init__(
        self, maxsize: int = 128, directory: Optional[str] = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._memory: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.tune.json")

    def _validate(
        self, record: Dict[str, object], signature: Optional[Dict[str, object]]
    ) -> bool:
        from repro import __version__

        if record.get("version") != __version__:
            return False
        if signature is not None and record.get("signature") != signature:
            return False
        return True

    def get(
        self, key: str, signature: Optional[Dict[str, object]] = None
    ) -> Optional[Tuple[Dict[str, object], str]]:
        """``(record, tier)`` for a stored key, else ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``.  With a ``signature``
        the stored record must carry the identical signature (defense
        against files copied across machines); mismatches count as
        ``stale`` misses and stale disk files are removed.
        """
        text = self._memory.get(key)
        if text is not None:
            record = json.loads(text)
            if self._validate(record, signature):
                self._memory.move_to_end(key)
                self.hits += 1
                self.memory_hits += 1
                return record, "memory"
            del self._memory[key]
            self.stale += 1
            self.misses += 1
            return None
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                record = json.loads(text)
            except FileNotFoundError:
                pass
            except (OSError, json.JSONDecodeError):
                # corrupt record: drop it and treat as a miss
                try:
                    os.remove(path)
                except OSError:
                    pass
            else:
                if not self._validate(record, signature):
                    self.stale += 1
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                else:
                    self._store_memory(key, text)
                    self.hits += 1
                    self.disk_hits += 1
                    return record, "disk"
        self.misses += 1
        return None

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Store a tuning record under ``key`` in both tiers."""
        text = _canonical(record)
        self._store_memory(key, text)
        if self.directory is not None:
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=".tune.tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp, self._path(key))
            except OSError:  # pragma: no cover - disk full etc.
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def _store_memory(self, key: str, text: str) -> None:
        self._memory[key] = text
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier with ``disk=True``)."""
        self._memory.clear()
        if disk and self.directory is not None:
            for entry in os.listdir(self.directory):
                if entry.endswith(".tune.json"):
                    try:
                        os.remove(os.path.join(self.directory, entry))
                    except OSError:
                        pass

    def describe(self) -> str:
        tiers = f"memory[{len(self._memory)}/{self.maxsize}]"
        if self.directory is not None:
            tiers += f" + disk[{self.directory}]"
        return (
            f"TuningDB({tiers}): {self.hits} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses ({self.stale} stale), "
            f"{self.evictions} evictions"
        )
