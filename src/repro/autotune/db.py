"""The persistent tuning database.

Measured tuning decisions are only meaningful on the machine that
produced them, for the exact program and configuration that was tuned.
A :class:`TuningDB` therefore stores each record under a
content-addressed key (the same sha256 fingerprint discipline as
:mod:`repro.runtime.plan_cache`):

    sha256( package version
          + configuration fingerprint
          + canonical program text
          + machine signature )

The **machine signature** (:func:`machine_signature`) captures what the
measurements depended on: the CPU count, the configured cache/memory
capacities from :class:`~repro.engine.machine.MachineModel`, the
numpy version (its kernels do the measured work), and the native
kernel compiler fingerprint (the ``kernel`` dimension's native
candidate depends on what compiled it).  A record is *never*
applied under a different signature -- the signature is part of the key
*and* re-validated against the stored copy on every hit, so even a file
copied between machines reads as a miss.

Storage is a :class:`repro.store.TwoTierStore` shared with the plan
cache: a bounded in-memory LRU over an optional sharded on-disk tier
with atomic, lock-protected publication (concurrent server workers and
CLI tuning runs share a directory without torn writes).  Disk records
are canonical JSON (sorted keys, fixed separators, trailing newline),
so two tuning runs that reach the same decisions produce
**byte-identical** files -- the property the CI determinism check
asserts.  Records deliberately contain decisions and trial counts but
no raw timings: timings are reported in the stage report, where
run-to-run noise belongs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro.store import TwoTierStore

__all__ = ["TuningDB", "machine_signature", "tuning_key"]


def machine_signature(machine=None) -> Dict[str, object]:
    """What the measurements depend on: cpu count, the configured
    memory-hierarchy capacities, the numpy version, and the native
    kernel compiler.

    ``machine`` is the :class:`~repro.engine.machine.MachineModel` the
    synthesis ran with (its capacities steer the analytical choices the
    measurements compete against); ``None`` uses the default model.
    The compiler fingerprint
    (:func:`repro.kernels.native.compiler_fingerprint`) keys the
    ``kernel`` dimension's native candidate: a decision measured with
    one compiler (or with none) is never replayed under another.
    """
    import numpy as np

    from repro.engine.machine import MachineModel
    from repro.kernels import compiler_fingerprint

    machine = machine or MachineModel()
    return {
        "cpu_count": os.cpu_count() or 1,
        "cache_elements": machine.cache.capacity,
        "memory_elements": machine.memory.capacity,
        "numpy": np.__version__,
        "kernel_compiler": compiler_fingerprint(),
    }


def _canonical(record: Dict[str, object]) -> str:
    """Canonical JSON text: sorted keys, fixed separators, newline."""
    return json.dumps(record, sort_keys=True, indent=2) + "\n"


def tuning_key(program, config, signature: Dict[str, object]) -> str:
    """Content-addressed key of (program, config, machine, version)."""
    from repro import __version__
    from repro.expr.printer import program_to_source
    from repro.runtime.plan_cache import config_fingerprint

    payload = "\n".join(
        [
            __version__,
            config_fingerprint(config),
            program_to_source(program),
            json.dumps(signature, sort_keys=True),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TuningDB:
    """In-memory LRU + optional on-disk store of tuning records.

    ``maxsize`` bounds the in-memory entry count; ``directory`` enables
    the persistent tier (one ``<key>.tune.json`` file per record, in a
    256-way sharded layout, published atomically under a lock file).
    Hits promote disk records back into memory.  A record whose stored
    signature or package version disagrees with the caller's is treated
    as a miss (and counted in ``stale``).
    """

    def __init__(
        self, maxsize: int = 128, directory: Optional[str] = None
    ) -> None:
        self._store = TwoTierStore(maxsize, directory, suffix=".tune.json")

    def __len__(self) -> int:
        return len(self._store)

    @property
    def maxsize(self) -> int:
        return self._store.maxsize

    @property
    def directory(self) -> Optional[str]:
        return self._store.directory

    @property
    def _memory(self):
        return self._store._memory

    @property
    def hits(self) -> int:
        return self._store.hits

    @property
    def memory_hits(self) -> int:
        return self._store.memory_hits

    @property
    def disk_hits(self) -> int:
        return self._store.disk_hits

    @property
    def misses(self) -> int:
        return self._store.misses

    @property
    def stale(self) -> int:
        return self._store.stale

    @property
    def evictions(self) -> int:
        return self._store.evictions

    def _path(self, key: str) -> str:
        return self._store.path(key)

    def _validate(
        self, record: Dict[str, object], signature: Optional[Dict[str, object]]
    ) -> bool:
        from repro import __version__

        if record.get("version") != __version__:
            return False
        if signature is not None and record.get("signature") != signature:
            return False
        return True

    def get(
        self, key: str, signature: Optional[Dict[str, object]] = None
    ) -> Optional[Tuple[Dict[str, object], str]]:
        """``(record, tier)`` for a stored key, else ``None``.

        ``tier`` is ``"memory"`` or ``"disk"``.  With a ``signature``
        the stored record must carry the identical signature (defense
        against files copied across machines); mismatches count as
        ``stale`` misses and stale disk files are removed.
        """
        return self._store.get(
            key,
            decode=lambda blob: json.loads(blob.decode("utf-8")),
            validate=lambda record: self._validate(record, signature),
        )

    def put(self, key: str, record: Dict[str, object]) -> None:
        """Store a tuning record under ``key`` in both tiers."""
        self._store.put(key, _canonical(record).encode("utf-8"))

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits per tier, misses, stale, evictions."""
        return self._store.stats()

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier with ``disk=True``)."""
        self._store.clear(disk=disk)

    def describe(self) -> str:
        return (
            f"TuningDB(memory[{len(self._store)}/{self.maxsize}]"
            + (
                f" + disk[{self.directory}]"
                if self.directory is not None
                else ""
            )
            + f"): {self.hits} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses ({self.stale} stale), "
            f"{self.evictions} evictions"
        )
