"""Candidate generation: the analytical searches' pareto heads.

The autotuner never invents candidates -- it re-ranks the *top-K* of
what the analytical stages already searched, which is what keeps
measurement cheap (SparseAuto's insight: prune with the model, decide
with the stopwatch).  One :class:`DimensionTuner` per tunable decision:

``tiles``
    the Section-6 tile search's lowest-modeled-miss combinations
    (:func:`repro.locality.tile_search.top_candidates`), re-applied to
    the pre-locality structure and timed through the compiled loop
    kernel;
``kernel``
    the kernel lowering variants -- GEMM lowering vs the cached einsum
    path (:func:`repro.kernels.plan.compile_kernel_plan` modes) --
    timed through a steady-state :class:`~repro.kernels.plan.KernelRunner`;
``grid``
    the Section-7 grid-shape DP's cheapest shapes
    (:func:`repro.parallel.gridsearch.top_shapes`), re-planned and
    timed through the SPMD driver;
``transport``
    the process backend's wire and worker count (shm vs pipe transport,
    procs), timed through real worker pools;
``threads``
    the native nest thread count (1 / 2 / half / all cores), timed
    through steady-state runners built at each count -- thread scaling
    depends on nest shape and memory bandwidth, which no static model
    here prices.

Each tuner yields :class:`Candidate` objects carrying the analytical
model's cost (for the rank-disagreement report), builds a no-argument
runner per candidate for the :class:`~repro.autotune.measure.Measurer`,
and knows how to apply a winner to the
:class:`~repro.pipeline.SynthesisResult` and how to reconstruct that
application from a persisted decision payload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Candidate",
    "DimensionTuner",
    "TileTuner",
    "KernelTuner",
    "GridTuner",
    "TransportTuner",
    "ThreadsTuner",
    "build_tuners",
]


@dataclass
class Candidate:
    """One measurable choice within a dimension."""

    label: str
    #: JSON-able decision payload (what the TuningDB stores)
    payload: object
    #: the analytical model's cost for this candidate (rank reporting)
    model_cost: float = 0.0
    #: True for the choice the analytical pipeline already made
    analytical: bool = False


class DimensionTuner:
    """One tunable decision: candidates, runners, application."""

    dimension: str = ""

    def candidates(self) -> List[Candidate]:
        raise NotImplementedError

    def runner(self, cand: Candidate) -> Callable[[], object]:
        raise NotImplementedError

    def apply(self, cand: Candidate) -> None:
        raise NotImplementedError

    def apply_payload(self, payload: object) -> bool:
        """Re-apply a persisted decision; False if it no longer maps."""
        for cand in self.candidates():
            if cand.payload == payload:
                self.apply(cand)
                return True
        return False

    def analytical_candidate(self, cands: List[Candidate]) -> Candidate:
        for cand in cands:
            if cand.analytical:
                return cand
        return min(cands, key=lambda c: c.model_cost)


class TileTuner(DimensionTuner):
    """Section-6 tile sizes, re-ranked by compiled-loop wall time.

    The miss model prices memory traffic only; at real sizes the tiled
    loop nest also pays per-iteration loop overhead the model cannot
    see, so the modeled best tiling and the fastest structure routinely
    disagree -- exactly the gap measurement closes.
    """

    dimension = "tiles"

    def __init__(self, result, inputs, top_k: int) -> None:
        from repro.locality.tile_search import (
            tileable_indices,
            top_candidates,
        )

        self.result = result
        self.inputs = inputs
        self.top_k = top_k
        self.base = result.pre_locality_structure
        self.table = result.locality_table
        self._by_name = (
            {i.name: i for i in tileable_indices(self.base)}
            if self.base is not None
            else {}
        )
        self._structures: Dict[str, object] = {}
        self._top = top_candidates if self.table else None

    def active(self) -> bool:
        return bool(self.table) and self.base is not None

    def _structure(self, tiles_by_name: Dict[str, int]):
        from repro.codegen.builder import apply_tiling
        from repro.codegen.loops import Alloc, walk

        if not tiles_by_name:
            return self.base
        tiles = {
            self._by_name[name]: size
            for name, size in tiles_by_name.items()
        }
        keep_global = [
            n.array for n in walk(self.base) if isinstance(n, Alloc)
        ]
        return apply_tiling(self.base, tiles, keep_global=keep_global)

    def candidates(self) -> List[Candidate]:
        from repro.locality.tile_search import top_candidates

        out: List[Candidate] = []
        chosen = dict(self.result.locality_tiles)
        for row in top_candidates(self.table, self.top_k):
            tiles = dict(row["tiles"])
            if any(name not in self._by_name for name in tiles):
                continue
            label = (
                "tiles " + ",".join(
                    f"{n}={b}" for n, b in sorted(tiles.items())
                )
                if tiles
                else "untiled"
            )
            self._structures[label] = self._structure(tiles)
            out.append(
                Candidate(
                    label,
                    tiles,
                    model_cost=float(row["cost"]),
                    analytical=(tiles == chosen),
                )
            )
        return out

    def runner(self, cand: Candidate) -> Callable[[], object]:
        from repro.codegen.pygen import compile_loops

        kernel = compile_loops(
            self._structures[cand.label], self.result.config.bindings
        )
        inputs = self.inputs
        return lambda: kernel(inputs)

    def apply(self, cand: Candidate) -> None:
        from repro.codegen.pygen import generate_source

        structure = self._structures[cand.label]
        self.result.structure = structure
        self.result.locality_tiles = dict(cand.payload)
        self.result.source = generate_source(
            structure, self.result.config.bindings
        )


class KernelTuner(DimensionTuner):
    """Kernel codegen target, per whole sequence: GEMM lowering vs the
    cached einsum path vs compiled native loop nests (the native
    candidate only appears on machines with a working backend, so a
    TuningDB decision for it can never be replayed where it cannot
    run -- and the machine signature's compiler fingerprint keys it)."""

    dimension = "kernel"

    def __init__(self, result, inputs) -> None:
        self.result = result
        self.inputs = inputs
        self._plans: Dict[str, object] = {}
        self._runners: Dict[str, object] = {}

    def active(self) -> bool:
        plan = self.result.kernel_plan
        return plan is not None and plan.gemm_terms > 0

    def _plan(self, mode: str):
        from repro.kernels import compile_kernel_plan

        plan = self._plans.get(mode)
        if plan is None:
            current = self.result.kernel_plan
            if current is not None and current.mode == mode:
                plan = current
            else:
                plan = compile_kernel_plan(
                    self.result.statements,
                    self.result.config.bindings,
                    mode=mode,
                    semiring=getattr(
                        self.result.config, "semiring", "plus_times"
                    ),
                )
            self._plans[mode] = plan
        return plan

    def candidates(self) -> List[Candidate]:
        from repro.kernels import native_available

        plan = self.result.kernel_plan
        current = plan.mode if plan is not None else "gemm"
        out = [
            Candidate(
                "kernel gemm", "gemm", 0.0, analytical=(current == "gemm")
            ),
            Candidate(
                "kernel einsum", "einsum", 1.0,
                analytical=(current == "einsum"),
            ),
        ]
        if native_available():
            out.append(
                Candidate(
                    "kernel native", "native", 0.5,
                    analytical=(current == "native"),
                )
            )
        return out

    def runner(self, cand: Candidate) -> Callable[[], object]:
        from repro.kernels.plan import KernelRunner

        mode = cand.payload
        runner = self._runners.get(mode)
        if runner is None:
            runner = KernelRunner(self._plan(mode))
            self._runners[mode] = runner
        inputs = self.inputs
        return lambda: runner.run(inputs)

    def apply(self, cand: Candidate) -> None:
        self.result.kernel_plan = self._plan(cand.payload)
        self.result.codegen_mode = cand.payload


class GridTuner(DimensionTuner):
    """Section-7 logical grid shapes, re-ranked by SPMD wall time."""

    dimension = "grid"

    def __init__(self, result, config, inputs, top_k: int) -> None:
        self.result = result
        self.config = config
        self.inputs = inputs
        self.top_k = top_k
        self._plans: Dict[Tuple[int, ...], Dict[str, object]] = {}

    def active(self) -> bool:
        return (
            self.config.processors is not None
            and len(self.result.grid_table) > 1
            and bool(self.result.partition_plans)
        )

    def _plans_for(self, shape: Tuple[int, ...]):
        from repro.parallel.grid import ProcessorGrid
        from repro.parallel.program_plan import plan_sequence

        plans = self._plans.get(shape)
        if plans is None:
            seq_plan = plan_sequence(
                self.result.statements,
                ProcessorGrid(shape),
                self.config.comm,
                self.config.bindings,
            )
            plans = dict(seq_plan.plans)
            self._plans[shape] = plans
        return plans

    def candidates(self) -> List[Candidate]:
        from repro.parallel.gridsearch import top_shapes

        chosen = tuple(
            next(iter(self.result.partition_plans.values())).grid.dims
        )
        costs = {tuple(s): c for s, c in self.result.grid_table}
        out = []
        for shape in top_shapes(self.result.grid_table, self.top_k):
            shape = tuple(shape)
            if not self._plans_for(shape):
                continue
            out.append(
                Candidate(
                    "grid " + "x".join(str(d) for d in shape),
                    list(shape),
                    model_cost=float(costs.get(shape, 0.0)),
                    analytical=(shape == chosen),
                )
            )
        return out

    def runner(self, cand: Candidate) -> Callable[[], object]:
        plans = self._plans_for(tuple(cand.payload))
        result, inputs = self.result, self.inputs

        def run():
            saved = result.partition_plans
            result.partition_plans = plans
            try:
                return result.run_parallel(inputs, backend="local")
            finally:
                result.partition_plans = saved

        return run

    def apply(self, cand: Candidate) -> None:
        self.result.partition_plans = self._plans_for(tuple(cand.payload))


class TransportTuner(DimensionTuner):
    """Process-backend wire (shm vs pipe) and worker count."""

    dimension = "transport"

    def __init__(self, result, inputs, measure_parallel: bool) -> None:
        self.result = result
        self.inputs = inputs
        self.measure_parallel = measure_parallel

    def active(self) -> bool:
        return self.measure_parallel and bool(self.result.partition_plans)

    def candidates(self) -> List[Candidate]:
        grid_size = next(
            iter(self.result.partition_plans.values())
        ).grid.size
        default_procs = min(grid_size, os.cpu_count() or 1)
        procs_options = sorted({1, default_procs})
        out = []
        for transport in ("shm", "pipe"):
            for procs in procs_options:
                out.append(
                    Candidate(
                        f"{transport} procs={procs}",
                        {"transport": transport, "procs": procs},
                        model_cost=0.0 if transport == "shm" else 1.0,
                        analytical=(
                            transport == "shm" and procs == default_procs
                        ),
                    )
                )
        return out

    def runner(self, cand: Candidate) -> Callable[[], object]:
        result, inputs = self.result, self.inputs
        transport = cand.payload["transport"]
        procs = cand.payload["procs"]
        return lambda: result.run_parallel(
            inputs, backend="process", procs=procs, transport=transport
        )

    def apply(self, cand: Candidate) -> None:
        # the decision lands in result.tuning (run_parallel's defaults);
        # nothing structural changes
        pass


class ThreadsTuner(DimensionTuner):
    """Native nest thread count (1 / 2 / half / all cores).

    Only active when the compiled plan actually carries native nests and
    a backend exists to run them.  Candidates above ``os.cpu_count()``
    are never offered, so a persisted decision replayed on a smaller
    machine falls back to the analytical default (threads=1) instead of
    oversubscribing.  An explicit ``SynthesisConfig.kernel_threads``
    disables the tuner -- the user already decided.
    """

    dimension = "threads"

    def __init__(self, result, inputs) -> None:
        self.result = result
        self.inputs = inputs
        self._runners: Dict[int, object] = {}

    def active(self) -> bool:
        from repro.kernels import native_available

        plan = self.result.kernel_plan
        return (
            plan is not None
            and plan.native_terms > 0
            and self.result.config.kernel_threads is None
            and native_available()
        )

    def candidates(self) -> List[Candidate]:
        ncpu = os.cpu_count() or 1
        counts = sorted(
            t for t in {1, 2, max(1, ncpu // 2), ncpu} if t <= ncpu
        )
        return [
            Candidate(
                f"threads={t}",
                t,
                model_cost=float(t != 1),
                analytical=(t == 1),
            )
            for t in counts
        ]

    def runner(self, cand: Candidate) -> Callable[[], object]:
        from repro.kernels.plan import KernelRunner

        threads = cand.payload
        runner = self._runners.get(threads)
        if runner is None:
            runner = KernelRunner(
                self.result.kernel_plan, threads=threads
            )
            self._runners[threads] = runner
        inputs = self.inputs
        return lambda: runner.run(inputs)

    def apply(self, cand: Candidate) -> None:
        # the decision lands in result.tuning.threads, which
        # kernel_runner() reads as its default; nothing structural
        pass


def build_tuners(result, config, inputs, options) -> List[DimensionTuner]:
    """The active tuners for one synthesis result, in a fixed order."""
    tuners: List[DimensionTuner] = [
        TileTuner(result, inputs, options.top_k),
        KernelTuner(result, inputs),
        ThreadsTuner(result, inputs),
        GridTuner(result, config, inputs, options.top_k),
        TransportTuner(result, inputs, options.measure_parallel),
    ]
    return [t for t in tuners if t.active()]
