"""Empirical autotuning: measure the model's top candidates, remember
the winners.

The locality and distribution stages pick tile sizes and processor
grids from purely analytical cost models (the paper's Section-6
doubling search and Section-7 DP).  On real hardware those models
misrank candidates that differ in loop overhead, GEMM shape, or
transport cost.  This package closes the gap the way SparseAuto and
CoNST do -- analytical candidate generation, empirical selection:

* :mod:`repro.autotune.candidates` -- the top-K pareto candidates of
  each analytical search (tile combinations, grid shapes, kernel
  lowering variants, transport/procs), each wrapped as a measurable
  runner;
* :mod:`repro.autotune.measure` -- timed micro-runs with warmup,
  repetition, median-of-N ``perf_counter_ns`` timing, and outlier
  rejection, charged against a shared search budget;
* :mod:`repro.autotune.db` -- the persistent :class:`TuningDB`:
  content-addressed records (program + config + machine signature)
  in an in-memory LRU over an atomic on-disk JSON tier, so repeat
  syntheses skip measurement entirely;
* :mod:`repro.autotune.stage` -- the opt-in pipeline stage
  (``synthesize(..., autotune=...)``, CLI ``--autotune``) that applies
  measured winners and reports timings, rank disagreements, and
  budget degradation.
"""

from repro.autotune.db import TuningDB, machine_signature, tuning_key
from repro.autotune.measure import Measurement, Measurer
from repro.autotune.stage import (
    AutotuneOptions,
    TuningDecisions,
    run_autotune,
)

__all__ = [
    "AutotuneOptions",
    "Measurement",
    "Measurer",
    "TuningDB",
    "TuningDecisions",
    "machine_signature",
    "run_autotune",
    "tuning_key",
]
