"""The autotuning pipeline stage.

:func:`run_autotune` sits after the six analytical stages (an opt-in
seventh box on the paper's Fig. 5): it takes the synthesized result,
measures the analytical searches' top candidates on the actual machine
(:mod:`repro.autotune.candidates` / :mod:`repro.autotune.measure`),
applies the measured winners, and appends an ``"Autotuning"``
:class:`~repro.report.StageReport` recording per-candidate timings, the
analytical-vs-measured rank disagreement, the trial counters, and the
budget status.

With a :class:`~repro.autotune.db.TuningDB`, decisions persist under a
content-addressed key of program + configuration + machine signature:
a warm hit re-applies the stored winners with **zero** measurement runs
(the stage report's ``measurement runs`` counter proves it).

Budgets: measurement charges the ``"tuning"`` stage of a
:class:`~repro.robustness.budget.Budget`.  On exhaustion the stage
keeps whatever winners it already applied, falls back to the analytical
choice for every unmeasured dimension, and reports ``degraded: true``
-- it never raises, even under ``strict`` budgets, because measurement
is advisory: the analytical result is always a correct answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.report import StageReport
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceeded

from repro.autotune.candidates import build_tuners
from repro.autotune.db import TuningDB, machine_signature, tuning_key
from repro.autotune.measure import Measurer

__all__ = ["AutotuneOptions", "TuningDecisions", "run_autotune"]


@dataclass
class AutotuneOptions:
    """Knobs of the autotuning stage.

    ``trials``/``warmup`` set the per-candidate measurement protocol;
    ``top_k`` caps how many analytical candidates per dimension are
    measured; ``db`` enables the persistent
    :class:`~repro.autotune.db.TuningDB`; ``budget`` bounds the whole
    stage (wall clock and/or run count); ``measure_parallel`` opts into
    the process-backend transport sweep (spawns real worker pools);
    ``timer`` is injectable for deterministic tests; ``seed`` fixes the
    synthetic measurement inputs.
    """

    trials: int = 3
    warmup: int = 1
    top_k: int = 4
    db: Optional[TuningDB] = None
    budget: Optional[Budget] = None
    measure_parallel: bool = False
    seed: int = 0
    timer: Callable[[], int] = time.perf_counter_ns


@dataclass
class TuningDecisions:
    """The decisions in effect on a tuned result (pickle-safe).

    ``source`` says where they came from: ``"measured"`` (fresh
    micro-runs), ``"db:memory"``/``"db:disk"`` (TuningDB hit), or
    ``"analytical"`` (nothing measured -- skipped or fully degraded).
    ``None`` fields mean the dimension was not tuned and the analytical
    choice stands.
    """

    source: str = "analytical"
    tiles: Optional[Dict[str, int]] = None
    kernel_mode: Optional[str] = None
    grid: Optional[Tuple[int, ...]] = None
    transport: Optional[str] = None
    procs: Optional[int] = None
    #: measured native-nest thread count (kernel_runner()'s default
    #: when the config does not pin one)
    threads: Optional[int] = None
    degraded: bool = False

    def as_payload(self) -> Dict[str, object]:
        """JSON-able decision mapping for the TuningDB."""
        out: Dict[str, object] = {}
        if self.tiles is not None:
            out["tiles"] = dict(self.tiles)
        if self.kernel_mode is not None:
            out["kernel"] = self.kernel_mode
        if self.grid is not None:
            out["grid"] = list(self.grid)
        if self.transport is not None or self.procs is not None:
            out["transport"] = {
                "transport": self.transport,
                "procs": self.procs,
            }
        if self.threads is not None:
            out["threads"] = self.threads
        return out


def _absorb(decisions: TuningDecisions, dimension: str, payload) -> None:
    if dimension == "tiles":
        decisions.tiles = dict(payload)
    elif dimension == "kernel":
        decisions.kernel_mode = payload
    elif dimension == "grid":
        decisions.grid = tuple(payload)
    elif dimension == "transport":
        decisions.transport = payload["transport"]
        decisions.procs = payload["procs"]
    elif dimension == "threads":
        decisions.threads = int(payload)


def _apply_record(result, config, options, record, tier) -> StageReport:
    """Warm-hit path: re-apply stored decisions, measure nothing."""
    decisions = TuningDecisions(source=f"db:{tier}")
    tuners = {
        t.dimension: t
        for t in build_tuners(result, config, None, options)
    }
    applied: List[str] = []
    payloads = record.get("decisions", {})
    for dimension, payload in sorted(payloads.items()):
        if dimension == "transport":
            decisions.transport = payload.get("transport")
            decisions.procs = payload.get("procs")
            applied.append(dimension)
            continue
        tuner = tuners.get(dimension)
        if tuner is not None and tuner.apply_payload(payload):
            _absorb(decisions, dimension, payload)
            applied.append(dimension)
    result.tuning = decisions
    report = StageReport(
        "Autotuning",
        {
            "hit": tier,
            "decisions applied": ", ".join(applied) or "none",
            "measurement runs": 0,
            "degraded": "false",
        },
    )
    if options.db is not None:
        report.details["database"] = options.db.describe()
    return report


def run_autotune(result, config, options: AutotuneOptions) -> StageReport:
    """Tune ``result`` in place; returns the appended stage report."""
    report = StageReport("Autotuning")
    signature = machine_signature(config.machine)
    key = tuning_key(result.program, config, signature)
    report.details["key"] = key[:16]

    if options.db is not None:
        hit = options.db.get(key, signature=signature)
        if hit is not None:
            record, tier = hit
            report = _apply_record(result, config, options, record, tier)
            report.details["key"] = key[:16]
            result.reports.append(report)
            return report

    decisions = TuningDecisions(source="measured")
    if any(t.is_function for t in result.program.tensors()):
        decisions.source = "analytical"
        result.tuning = decisions
        report.details["invoked"] = (
            "no (program declares function tensors; cannot synthesize "
            "measurement inputs)"
        )
        report.details["measurement runs"] = 0
        report.details["degraded"] = "false"
        result.reports.append(report)
        return report

    from repro.engine.executor import random_inputs

    inputs = random_inputs(
        result.program, config.bindings, seed=options.seed
    )
    tracker = (
        options.budget.start() if options.budget is not None else None
    )
    measurer = Measurer(
        warmup=options.warmup,
        repeats=options.trials,
        timer=options.timer,
        tracker=tracker,
    )
    tuners = build_tuners(result, config, inputs, options)
    disagreements = 0
    measured_dims = 0
    degraded_dims: List[str] = []
    for tuner in tuners:
        dim = tuner.dimension
        try:
            cands = tuner.candidates()
            if len(cands) < 2:
                report.details[f"{dim}: chosen"] = (
                    f"{cands[0].label} (only candidate)"
                    if cands
                    else "no candidates"
                )
                continue
            timings = []
            for cand in cands:
                m = measurer.measure(cand.label, tuner.runner(cand))
                timings.append((cand, m))
                report.details[f"{dim}: {cand.label}"] = (
                    f"{m.median_ms:.3f} ms"
                    + (f" ({m.rejected} outliers)" if m.rejected else "")
                )
        except BudgetExceeded as exc:
            degraded_dims.append(dim)
            report.details[f"{dim}: chosen"] = (
                "analytical (budget exhausted)"
            )
            report.notes.append(
                f"{dim}: budget exhausted ({exc.message}); "
                "fell back to the analytical choice"
            )
            continue
        winner, winner_m = min(timings, key=lambda t: t[1].median_ns)
        analytical = tuner.analytical_candidate(cands)
        analytical_m = next(
            m for c, m in timings if c is analytical
        )
        tuner.apply(winner)
        _absorb(decisions, dim, winner.payload)
        measured_dims += 1
        if winner is not analytical:
            disagreements += 1
            speedup = (
                analytical_m.median_ns / winner_m.median_ns
                if winner_m.median_ns
                else float("inf")
            )
            report.details[f"{dim}: chosen"] = (
                f"{winner.label} (model ranked {analytical.label}; "
                f"measured {speedup:.2f}x faster)"
            )
        else:
            report.details[f"{dim}: chosen"] = (
                f"{winner.label} (agrees with the model)"
            )

    decisions.degraded = bool(degraded_dims)
    if not measured_dims and not degraded_dims:
        decisions.source = "analytical"
    result.tuning = decisions

    report.details["dimensions measured"] = measured_dims
    report.details["rank disagreements"] = (
        f"{disagreements}/{measured_dims}" if measured_dims else "0/0"
    )
    report.details["measurement runs"] = measurer.total_runs
    report.details["degraded"] = (
        "true" if degraded_dims else "false"
    )
    if tracker is not None:
        report.details["budget nodes charged"] = tracker.nodes

    if (
        options.db is not None
        and measured_dims
        and not degraded_dims
    ):
        from repro import __version__

        options.db.put(
            key,
            {
                "version": __version__,
                "signature": signature,
                "decisions": decisions.as_payload(),
                "protocol": {
                    "warmup": options.warmup,
                    "trials": options.trials,
                    "top_k": options.top_k,
                    "seed": options.seed,
                },
            },
        )
        report.details["hit"] = "miss (measured and stored)"
        report.details["database"] = options.db.describe()
    elif options.db is not None:
        report.details["hit"] = "miss (not stored: degraded or unmeasured)"
        report.details["database"] = options.db.describe()

    result.reports.append(report)
    return report
