"""Per-tenant admission control over the shared search budget machinery.

Every request names a tenant; each tenant carries a *per-request*
:class:`~repro.robustness.budget.Budget` (how much search one
compilation may spend) and an optional *cumulative node allowance*
(how much total search the tenant may spend across requests).  A tenant
over its allowance is not rejected: its requests run under
``budget.narrowed(max_nodes=0)``, so every pipeline stage degrades to
its documented greedy fallback exactly as the offline pipeline does --
the response carries a structured ``degraded`` list and admission note,
never a 5xx.

Admission is deliberately **binary** (full per-request budget while
allowance remains, zero-node budget after): the budget is part of the
plan-cache fingerprint, so quantizing to two states keeps one tenant's
requests cache- and coalesce-compatible with each other (and with every
other tenant on the same policy) instead of splitting the key space by
the continuously-shrinking remainder.

Policies load from a JSON tenants file (``repro serve
--tenants-file``)::

    {
      "default": {"budget_ms": 2000},
      "tenants": {
        "team-a": {"budget_nodes": 200000, "allowance_nodes": 1000000},
        "batch":  {"budget_ms": 500}
      }
    }
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.robustness.budget import Budget
from repro.robustness.errors import SpecError

__all__ = ["TenantPolicy", "TenantAccount", "TenantRegistry"]


@dataclass(frozen=True)
class TenantPolicy:
    """Declarative limits of one tenant (or the default for unknowns)."""

    name: str
    #: per-request search budget (unbounded by default)
    budget: Budget = field(default_factory=Budget)
    #: cumulative search-node allowance across requests; ``None`` is
    #: unlimited.  Cache hits and coalesced requests charge ~nothing,
    #: so a well-behaved tenant's allowance lasts.
    allowance_nodes: Optional[int] = None


class TenantAccount:
    """Mutable consumption state of one tenant."""

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self.nodes_used = 0
        self.requests = 0
        self.degraded_requests = 0
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        return (
            self.policy.allowance_nodes is not None
            and self.nodes_used >= self.policy.allowance_nodes
        )

    def admission_budget(self) -> Budget:
        """The budget this tenant's next request runs under."""
        if self.exhausted:
            return self.policy.budget.narrowed(max_nodes=0)
        return self.policy.budget

    def charge(self, nodes: int, degraded: bool) -> None:
        """Account one finished request against the allowance."""
        with self._lock:
            self.nodes_used += nodes
            self.requests += 1
            if degraded:
                self.degraded_requests += 1

    def stats(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "nodes_used": self.nodes_used,
            "allowance_nodes": self.policy.allowance_nodes,
            "exhausted": self.exhausted,
        }


def _policy_from_spec(name: str, spec: Mapping) -> TenantPolicy:
    if not isinstance(spec, Mapping):
        raise SpecError(
            f"tenant {name!r}: policy must be an object, "
            f"got {type(spec).__name__}"
        )
    allowed = {"budget_ms", "budget_nodes", "allowance_nodes"}
    unknown = set(spec) - allowed
    if unknown:
        raise SpecError(
            f"tenant {name!r}: unknown key(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    budget_ms = spec.get("budget_ms")
    budget_nodes = spec.get("budget_nodes")
    allowance = spec.get("allowance_nodes")
    for key, value, kind in (
        ("budget_ms", budget_ms, (int, float)),
        ("budget_nodes", budget_nodes, int),
        ("allowance_nodes", allowance, int),
    ):
        if value is not None and (
            not isinstance(value, kind)
            or isinstance(value, bool)
            or value < 0
        ):
            raise SpecError(
                f"tenant {name!r}: {key} must be a non-negative number, "
                f"got {value!r}"
            )
    return TenantPolicy(
        name=name,
        budget=Budget(
            deadline_ms=float(budget_ms) if budget_ms is not None else None,
            max_nodes=budget_nodes,
        ),
        allowance_nodes=allowance,
    )


class TenantRegistry:
    """Accounts per tenant name, created on first sight from policies.

    ``policies`` maps known tenant names to their
    :class:`TenantPolicy`; unknown tenants get ``default`` (renamed to
    the requester).  Thread-safe: handlers run in executor threads.
    """

    def __init__(
        self,
        policies: Optional[Mapping[str, TenantPolicy]] = None,
        default: Optional[TenantPolicy] = None,
    ) -> None:
        self._policies = dict(policies or {})
        self._default = default or TenantPolicy("default")
        self._accounts: Dict[str, TenantAccount] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_file(cls, path: str) -> "TenantRegistry":
        """Load a tenants file (see module docstring for the format)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SpecError(f"cannot read tenants file {path!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise SpecError(f"tenants file {path!r} is not valid JSON: {exc}")
        if not isinstance(data, Mapping):
            raise SpecError(
                f"tenants file {path!r} must hold a JSON object"
            )
        unknown = set(data) - {"default", "tenants"}
        if unknown:
            raise SpecError(
                f"tenants file {path!r}: unknown key(s) {sorted(unknown)}"
            )
        default = None
        if "default" in data:
            default = _policy_from_spec("default", data["default"])
        tenants = data.get("tenants", {})
        if not isinstance(tenants, Mapping):
            raise SpecError(f"tenants file {path!r}: 'tenants' must map names")
        policies = {
            str(name): _policy_from_spec(str(name), spec)
            for name, spec in tenants.items()
        }
        return cls(policies=policies, default=default)

    def account(self, name: str) -> TenantAccount:
        """The (possibly new) account of tenant ``name``."""
        with self._lock:
            account = self._accounts.get(name)
            if account is None:
                policy = self._policies.get(name)
                if policy is None:
                    policy = TenantPolicy(
                        name=name,
                        budget=self._default.budget,
                        allowance_nodes=self._default.allowance_nodes,
                    )
                account = TenantAccount(policy)
                self._accounts[name] = account
            return account

    def stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                name: account.stats()
                for name, account in sorted(self._accounts.items())
            }
