"""A tiny JSON-over-HTTP client for the compilation service.

Used by the test suite, the load smoke test, and the serving
benchmark; kept dependency-free (asyncio streams / ``http.client``)
like the server itself.  Each call is one connection -- the server
answers ``Connection: close``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

__all__ = ["arequest", "request"]


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 120.0,
) -> Tuple[int, dict]:
    """``(status, body)`` of one request against a running server."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        # read exactly Content-Length bytes -- never wait for EOF: pool
        # worker processes forked mid-request inherit this socket's fd
        # and keep it open long after the server answered
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
        length = 0
        for line in header_blob.decode("latin-1").split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        response_body = await asyncio.wait_for(
            reader.readexactly(length), timeout=timeout
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(response_body.decode("utf-8"))


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 120.0,
) -> Tuple[int, dict]:
    """Synchronous :func:`arequest` (scripts without an event loop)."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = (
            None if payload is None else json.dumps(payload).encode("utf-8")
        )
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()
