"""A tiny JSON-over-HTTP client for the compilation service.

Used by the test suite, the load smoke test, and the serving
benchmark; kept dependency-free (asyncio streams / ``http.client``)
like the server itself.  Each call is one connection -- the server
answers ``Connection: close``.

:func:`request` optionally retries (``retries=N``) with jittered
exponential backoff -- but only failures that are safe and useful to
retry: connection errors (server restarting), 429 (load shed), and
503 (circuit open).  A served error (400, 500, 504) is the answer,
not a transient; retrying it would just repeat the failure.  The
server's ``Retry-After`` header, when present, overrides the computed
backoff -- the server knows its own cool-down better than the client's
exponent does.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from typing import Callable, Optional, Tuple

__all__ = ["arequest", "request"]

#: statuses worth retrying: shed load and open breakers clear on their
#: own; everything else is a definitive answer
RETRYABLE_STATUSES = (429, 503)


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 120.0,
) -> Tuple[int, dict]:
    """``(status, body)`` of one request against a running server."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        # read exactly Content-Length bytes -- never wait for EOF: pool
        # worker processes forked mid-request inherit this socket's fd
        # and keep it open long after the server answered
        header_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
        length = 0
        for line in header_blob.decode("latin-1").split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        response_body = await asyncio.wait_for(
            reader.readexactly(length), timeout=timeout
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, json.loads(response_body.decode("utf-8"))


def _request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict],
    timeout: float,
) -> Tuple[int, dict, Optional[str]]:
    """``(status, body, retry_after_header)`` of one attempt."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = (
            None if payload is None else json.dumps(payload).encode("utf-8")
        )
        conn.request(
            method, path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return (
            response.status,
            json.loads(response.read().decode("utf-8")),
            response.getheader("Retry-After"),
        )
    finally:
        conn.close()


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 120.0,
    retries: int = 0,
    backoff_s: float = 0.25,
    max_backoff_s: float = 5.0,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
) -> Tuple[int, dict]:
    """Synchronous :func:`arequest` (scripts without an event loop).

    ``retries`` enables bounded retry (see module docstring): up to
    ``retries`` re-attempts after a connection error, 429, or 503,
    sleeping a full-jittered exponential backoff between attempts
    (``uniform(0, min(max_backoff_s, backoff_s * 2**attempt))``), or
    the server's ``Retry-After`` when it sent one.  The last answer
    (or the last connection error) is surfaced when retries run out.
    ``sleep`` and ``rng`` are injectable so tests cover the schedule
    without wall-clock waits.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    rng = rng or random.Random()
    attempt = 0
    while True:
        retry_after = None
        try:
            status, body, retry_after = _request_once(
                host, port, method, path, payload, timeout
            )
            if status not in RETRYABLE_STATUSES or attempt >= retries:
                return status, body
        except (ConnectionError, OSError):
            if attempt >= retries:
                raise
        delay = rng.uniform(
            0.0, min(max_backoff_s, backoff_s * (2.0 ** attempt))
        )
        if retry_after is not None:
            try:
                delay = max(0.0, float(retry_after))
            except ValueError:
                pass  # unparseable header: keep the computed backoff
        sleep(delay)
        attempt += 1
