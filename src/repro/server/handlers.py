"""Endpoint logic of the compilation service.

The HTTP layer (:mod:`repro.server.app`) owns sockets and error
mapping; each handler here turns one validated JSON payload into one
JSON response, wired through the server's shared machinery:

* synthesis goes through the **coalescer** (one synthesis per in-flight
  plan-cache key) into the shared **plan cache**;
* every request runs under its tenant's **admission budget** -- an
  over-allowance tenant degrades per-stage and the response says so in
  ``degraded`` / ``admission``, with status 200;
* process-backend executions borrow warm worker pools from the
  **pool registry** and always return them (broken pools are evicted
  there, never reused).

Blocking pipeline work (search stages, executions) runs in the server's
thread executor so the event loop keeps accepting connections.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.expr.parser import parse_program
from repro.robustness.budget import Budget
from repro.robustness.errors import DeadlineExceeded, SpecError
from repro.robustness.faults import ChaosState
from repro.runtime.plan_cache import plan_key
from repro.runtime.supervisor import PoolSupervisor, deadline_clock
from repro.server import wire

__all__ = ["Handlers"]


def _round_ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


def _budget_fields(budget: Optional[Budget]) -> Dict[str, object]:
    if budget is None:
        return {"deadline_ms": None, "max_nodes": None}
    return {"deadline_ms": budget.deadline_ms, "max_nodes": budget.max_nodes}


class Handlers:
    """One instance per server; methods are the routed endpoints."""

    def __init__(self, app) -> None:
        self.app = app

    # -- shared synthesis path ---------------------------------------------

    async def _synthesize(
        self,
        program_text: str,
        tenant: str,
        config,
        deadline_ms: Optional[int] = None,
    ):
        """Parse, admit, coalesce, synthesize; returns the pieces every
        endpoint needs."""
        app = self.app
        program = parse_program(program_text)
        account = app.tenants.account(tenant)
        admission_exhausted = account.exhausted
        budget = account.admission_budget()
        if deadline_ms is not None:
            # a request deadline narrows the search budget the same way
            # tenant admission does; the stages degrade instead of
            # overrunning.  It necessarily enters the plan-cache key
            # (same deadline -> same key) -- the binary tenant-budget
            # quantization precedent, documented in architecture.md
            budget = budget.narrowed(deadline_ms=deadline_ms)
        if (
            budget.deadline_ms is None
            and budget.max_nodes is None
            and not budget.strict
        ):
            # an unbounded budget fingerprints like the CLI's default
            # (None), so server and CLI share plan-cache entries
            budget = None
        config = replace(config, budget=budget)
        key = plan_key(program, config)
        started = time.perf_counter()

        def thunk():
            return app.synthesize_fn(program, config, cache=app.plan_cache)

        result, coalesced = await app.coalescer.run(
            key, thunk, app.executor
        )
        synthesis_s = time.perf_counter() - started
        if coalesced:
            app.plan_cache.note_coalesced()
        tier = "unknown"
        if result.reports and result.reports[-1].name == "Plan cache":
            tier = str(result.reports[-1].details.get("hit", "unknown"))
        if tier.startswith("miss"):
            tier = "miss"
        # charge search nodes only to the request that ran the search;
        # warm hits and coalesced followers spent (almost) nothing
        ran_search = tier == "miss" and not coalesced
        nodes = (
            result.budget_tracker.nodes
            if ran_search and result.budget_tracker is not None
            else 0
        )
        degraded = list(result.degraded_stages)
        account.charge(nodes, degraded=bool(degraded))
        admission = {
            "tenant": account.policy.name,
            "exhausted": admission_exhausted,
            "budget": _budget_fields(budget),
            "nodes_charged": nodes,
        }
        return program, config, result, {
            "key": key,
            "cached": tier,
            "coalesced": coalesced,
            "degraded": degraded,
            "admission": admission,
            "synthesis_s": synthesis_s,
        }

    # -- endpoints ---------------------------------------------------------

    async def synthesize(self, payload) -> Tuple[int, Dict[str, object]]:
        """``POST /v1/synthesize``: compile (or fetch) a plan."""
        req = wire.parse_synthesize_request(payload)
        program, _, result, meta = await self._synthesize(
            req.program, req.tenant, req.config,
            deadline_ms=req.deadline_ms,
        )
        body = {
            "key": meta["key"],
            "tenant": req.tenant,
            "cached": meta["cached"],
            "coalesced": meta["coalesced"],
            "degraded": meta["degraded"],
            "admission": meta["admission"],
            "statements": len(result.statements),
            "partition_plans": sorted(result.partition_plans),
            "source_lines": result.source.count("\n"),
            "source_sha256": hashlib.sha256(
                result.source.encode("utf-8")
            ).hexdigest(),
            "stage_reports": [r.name for r in result.reports],
            "timings_ms": {"synthesis": _round_ms(meta["synthesis_s"])},
        }
        return 200, body

    async def execute(self, payload) -> Tuple[int, Dict[str, object]]:
        """``POST /v1/execute``: compile (cached/coalesced) + run."""
        app = self.app
        req = wire.parse_execute_request(payload)
        deadline_ms = (
            req.deadline_ms
            if req.deadline_ms is not None
            else app.config.deadline_ms
        )
        # the deadline clock starts before synthesis: whatever search
        # spends is gone from execution's share
        time_left = deadline_clock(deadline_ms)
        program, config, result, meta = await self._synthesize(
            req.program, req.tenant, req.config, deadline_ms=deadline_ms
        )

        def run():
            t0 = time.perf_counter()
            if time_left is not None and time_left() <= 0:
                raise DeadlineExceeded(
                    f"deadline of {deadline_ms}ms expired during "
                    "synthesis, before execution",
                    stage="serving",
                    deadline_ms=deadline_ms,
                )
            inputs = req.inputs
            if inputs is None:
                if any(t.is_function for t in program.tensors()):
                    raise SpecError(
                        "cannot synthesize random inputs for function "
                        "tensors; send explicit 'inputs'"
                    )
                from repro.engine.executor import random_inputs

                inputs = random_inputs(
                    program, config.bindings, seed=req.seed
                )
            backend = req.backend
            if backend == "auto":
                backend = (
                    "process" if result.partition_plans else "interp"
                )
            if backend in ("process", "local") and not result.partition_plans:
                raise SpecError(
                    f"backend {backend!r} needs partition plans; request "
                    "options.grid or options.processors"
                )
            pool_meta = {"leased": False, "warm": False}
            if backend == "process":
                grid_size = next(
                    iter(result.partition_plans.values())
                ).grid.size
                nworkers = max(
                    1,
                    min(
                        req.procs or grid_size,
                        grid_size,
                        os.cpu_count() or 1,
                    ),
                )
                pool, warm = app.pools.lease(nworkers, req.transport)
                pool_meta = {
                    "leased": True,
                    "warm": warm,
                    "procs": nworkers,
                    "transport": pool.transport,
                }
                # the recv watchdog never waits past what is left of
                # the request's deadline
                watchdog = app.config.watchdog_timeout_s
                if time_left is not None:
                    watchdog = min(watchdog, max(0.1, time_left()))
                supervisor = PoolSupervisor(
                    pool=pool,
                    recv_timeout_s=watchdog,
                    chaos=(
                        ChaosState(req.chaos)
                        if req.chaos is not None
                        else None
                    ),
                    time_left=time_left,
                    on_respawn=app.pools.replace,
                )
                try:
                    out = result.run_parallel(
                        inputs,
                        faults=req.faults,
                        backend="process",
                        procs=nworkers,
                        supervisor=supervisor,
                    )
                finally:
                    pool_meta["respawns"] = supervisor.respawns
                    pool_meta["retries"] = supervisor.retries
                    final = supervisor.detach()
                    if final is not None:
                        app.pools.release(final)
            elif backend == "local":
                out = result.run_parallel(
                    inputs, faults=req.faults, backend="local"
                )
            else:
                out = result.execute(inputs)
            execution_s = time.perf_counter() - t0
            return out, backend, pool_meta, execution_s

        loop = asyncio.get_running_loop()
        out, backend, pool_meta, execution_s = await loop.run_in_executor(
            app.executor, run
        )
        wanted = [stmt.result.name for stmt in program.statements]
        outputs: Dict[str, object] = {}
        for name in wanted:
            if name not in out:
                continue
            array = np.asarray(out[name])
            if req.result_mode == "checksum":
                outputs[name] = {
                    "sum": float(array.sum()),
                    "shape": list(array.shape),
                }
            else:
                outputs[name] = array.tolist()
        body = {
            "key": meta["key"],
            "tenant": req.tenant,
            "cached": meta["cached"],
            "coalesced": meta["coalesced"],
            "degraded": meta["degraded"],
            "admission": meta["admission"],
            "backend": backend,
            "pool": pool_meta,
            "notes": list(result.last_run_notes),
            "result": req.result_mode,
            "outputs": outputs,
            "timings_ms": {
                "synthesis": _round_ms(meta["synthesis_s"]),
                "execution": _round_ms(execution_s),
                "total": _round_ms(meta["synthesis_s"] + execution_s),
            },
        }
        return 200, body

    async def healthz(self, payload=None) -> Tuple[int, Dict[str, object]]:
        """``GET /healthz`` (and ``/stats``): liveness + counters."""
        from repro import __version__
        from repro.kernels import engine_stats

        app = self.app
        return 200, {
            "status": "ok",
            "service": "repro.server",
            "version": __version__,
            "uptime_s": round(time.monotonic() - app.started, 3),
            "requests": dict(app.request_counts),
            "plan_cache": app.plan_cache.stats(),
            "artifact_store": engine_stats(),
            "coalescer": app.coalescer.stats(),
            "pools": app.pools.stats(),
            "tenants": app.tenants.stats(),
            "admission": {
                "max_inflight": app.config.max_inflight,
                "inflight": app.gated_inflight,
                "shed": app.shed,
            },
            "breakers": {
                route: breaker.snapshot()
                for route, breaker in app.breakers.items()
            },
        }

    async def index(self, payload=None) -> Tuple[int, Dict[str, object]]:
        """``GET /``: service discovery."""
        return 200, {
            "service": "repro.server",
            "endpoints": [
                "POST /v1/synthesize",
                "POST /v1/execute",
                "GET /healthz",
                "GET /stats",
            ],
        }
