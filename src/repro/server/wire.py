"""Request/response wire schema of the compilation service.

Requests and responses are JSON objects; this module is the single
place that turns untrusted payloads into validated, typed values (and
pipeline results back into JSON-safe dictionaries).  Malformed payloads
raise :class:`~repro.robustness.errors.SpecError`, which the HTTP layer
maps to a structured ``400`` -- the service reserves 5xx for genuine
server-side failures, never for over-budget or ill-formed requests.

``POST /v1/synthesize`` body::

    {
      "program": "range N = 6; ... C(i,j) = sum(k) A(i,k)*B(k,j);",
      "tenant": "team-a",                  # optional, default "anonymous"
      "deadline_ms": 2000,                  # optional per-request deadline
      "options": {                          # optional SynthesisConfig subset
        "grid": "2x2" | 4,                  # processor grid
        "processors": 4,                    # alternative: let search pick
        "bindings": {"N": 64},
        "optimize_cache": true, "sparse_aware": false,
        "sparse_execution": true, "factorize": true,
        "capacity_level": "memory",
        "cache_elements": 32768, "memory_elements": 16777216
      }
    }

``POST /v1/execute`` accepts the same fields plus::

    {
      "inputs": {"A": [[...], ...]},        # or "seed": 0 for deterministic
      "seed": 0,                            #   random inputs
      "backend": "auto" | "process" | "local" | "interp",
      "procs": 2, "transport": "shm" | "pipe",
      "faults": "drop:0;crash:1",           # FaultSchedule spec
      "chaos": "kill_worker@0",             # ChaosSchedule spec
      "result": "arrays" | "checksum"       # payload size control
    }

``deadline_ms`` bounds the *whole* request: it narrows the synthesis
budget (degrading search stages the same way tenant admission does)
and what remains after synthesis bounds execution -- the recv watchdog
shrinks to the remaining time and an expired deadline surfaces as a
structured 504, never a hung connection.  ``chaos`` injects
process-level faults (worker kills, hangs, swallowed replies) into
this request's execution; recovery by the supervised pool is recorded
in the response's ``pool``/``notes`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

import numpy as np

from repro.engine.machine import MachineModel, MemoryLevel
from repro.parallel.grid import ProcessorGrid
from repro.pipeline import SynthesisConfig
from repro.robustness.errors import SpecError
from repro.robustness.faults import (
    ChaosSchedule,
    FaultSchedule,
    parse_chaos_spec,
    parse_fault_spec,
)

__all__ = [
    "SynthesizeRequest",
    "ExecuteRequest",
    "parse_synthesize_request",
    "parse_execute_request",
    "config_from_options",
]

#: accepted keys of the ``options`` object
_OPTION_KEYS = frozenset(
    {
        "grid",
        "processors",
        "bindings",
        "optimize_cache",
        "sparse_aware",
        "sparse_execution",
        "factorize",
        "capacity_level",
        "cache_elements",
        "memory_elements",
    }
)

_BACKENDS = ("auto", "process", "local", "interp")
_RESULT_MODES = ("arrays", "checksum")


@dataclass(frozen=True)
class SynthesizeRequest:
    """A validated ``/v1/synthesize`` payload."""

    program: str
    tenant: str = "anonymous"
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    deadline_ms: Optional[int] = None


@dataclass(frozen=True)
class ExecuteRequest:
    """A validated ``/v1/execute`` payload."""

    program: str
    tenant: str = "anonymous"
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    deadline_ms: Optional[int] = None
    inputs: Optional[Dict[str, np.ndarray]] = None
    seed: int = 0
    backend: str = "auto"
    procs: Optional[int] = None
    transport: str = "shm"
    faults: Optional[FaultSchedule] = None
    chaos: Optional[ChaosSchedule] = None
    result_mode: str = "arrays"


def _expect(payload: Mapping, key: str, types, default=None, required=False):
    value = payload.get(key, default)
    if value is None and not required:
        return default
    if required and key not in payload:
        raise SpecError(f"request is missing required field {key!r}")
    if not isinstance(value, types):
        names = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise SpecError(
            f"field {key!r} must be {names}, got {type(value).__name__}"
        )
    return value


def _parse_grid(value) -> ProcessorGrid:
    try:
        if isinstance(value, int):
            return ProcessorGrid((value,))
        if isinstance(value, str):
            return ProcessorGrid(
                tuple(int(p) for p in value.lower().split("x"))
            )
    except (ValueError, TypeError) as exc:
        raise SpecError(f"bad grid {value!r}: {exc}") from exc
    raise SpecError(
        f"grid must be an int or a string like '2x2', "
        f"got {type(value).__name__}"
    )


def config_from_options(options: Optional[Mapping]) -> SynthesisConfig:
    """Build a :class:`SynthesisConfig` from a request's ``options``.

    Unknown keys are rejected by name (a typo must not silently fall
    back to defaults).  The tenant's admission budget is attached by
    the handler, not here -- budgets are a server policy, never client
    input.
    """
    if options is None:
        return SynthesisConfig()
    if not isinstance(options, Mapping):
        raise SpecError(
            f"options must be an object, got {type(options).__name__}"
        )
    unknown = set(options) - _OPTION_KEYS
    if unknown:
        raise SpecError(
            f"unknown option(s) {sorted(unknown)}; "
            f"allowed: {sorted(_OPTION_KEYS)}"
        )
    config = SynthesisConfig()
    if "grid" in options and "processors" in options:
        raise SpecError("give either 'grid' or 'processors', not both")
    if "grid" in options:
        config = replace(config, grid=_parse_grid(options["grid"]))
    if "processors" in options:
        processors = _expect(options, "processors", int, required=True)
        if processors < 1:
            raise SpecError(
                f"processors must be a positive count, got {processors}"
            )
        config = replace(config, processors=processors)
    if "bindings" in options:
        bindings = _expect(options, "bindings", Mapping, required=True)
        clean: Dict[str, int] = {}
        for name, extent in bindings.items():
            if not isinstance(extent, int) or extent < 1:
                raise SpecError(
                    f"binding {name!r} must be a positive integer extent, "
                    f"got {extent!r}"
                )
            clean[str(name)] = extent
        config = replace(config, bindings=clean)
    for key in (
        "optimize_cache", "sparse_aware", "sparse_execution", "factorize",
    ):
        if key in options:
            config = replace(
                config, **{key: _expect(options, key, bool, required=True)}
            )
    if "capacity_level" in options:
        level = _expect(options, "capacity_level", str, required=True)
        if level not in ("memory", "disk"):
            raise SpecError(
                f"capacity_level must be 'memory' or 'disk', got {level!r}"
            )
        config = replace(config, capacity_level=level)
    if "cache_elements" in options or "memory_elements" in options:
        cache = _expect(
            options, "cache_elements", int, default=32 * 1024
        )
        memory = _expect(
            options, "memory_elements", int, default=16 * 1024 * 1024
        )
        if cache < 1 or memory < 1:
            raise SpecError(
                "cache_elements/memory_elements must be positive capacities"
            )
        default = MachineModel()
        config = replace(
            config,
            machine=MachineModel(
                cache=MemoryLevel("cache", cache, default.cache.miss_cost),
                memory=MemoryLevel(
                    "memory", memory, default.memory.miss_cost
                ),
                disk=default.disk,
            ),
        )
    return config


def _parse_common(payload: Mapping):
    if not isinstance(payload, Mapping):
        raise SpecError(
            f"request body must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    program = _expect(payload, "program", str, required=True)
    if not program.strip():
        raise SpecError("field 'program' must not be empty")
    tenant = _expect(payload, "tenant", str, default="anonymous")
    config = config_from_options(payload.get("options"))
    deadline_ms = _expect(payload, "deadline_ms", int)
    if deadline_ms is not None and deadline_ms < 1:
        raise SpecError(
            f"deadline_ms must be a positive millisecond count, "
            f"got {deadline_ms}"
        )
    return program, tenant, config, deadline_ms


def parse_synthesize_request(payload: Mapping) -> SynthesizeRequest:
    """Validate a ``/v1/synthesize`` body (see module docstring)."""
    allowed = {"program", "tenant", "options", "deadline_ms"}
    unknown = set(payload) - allowed if isinstance(payload, Mapping) else set()
    if unknown:
        raise SpecError(
            f"unknown field(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    program, tenant, config, deadline_ms = _parse_common(payload)
    return SynthesizeRequest(
        program=program,
        tenant=tenant,
        config=config,
        deadline_ms=deadline_ms,
    )


def parse_execute_request(payload: Mapping) -> ExecuteRequest:
    """Validate a ``/v1/execute`` body (see module docstring)."""
    allowed = {
        "program", "tenant", "options", "deadline_ms", "inputs", "seed",
        "backend", "procs", "transport", "faults", "chaos", "result",
    }
    unknown = set(payload) - allowed if isinstance(payload, Mapping) else set()
    if unknown:
        raise SpecError(
            f"unknown field(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    program, tenant, config, deadline_ms = _parse_common(payload)
    backend = _expect(payload, "backend", str, default="auto")
    if backend not in _BACKENDS:
        raise SpecError(
            f"backend must be one of {_BACKENDS}, got {backend!r}"
        )
    result_mode = _expect(payload, "result", str, default="arrays")
    if result_mode not in _RESULT_MODES:
        raise SpecError(
            f"result must be one of {_RESULT_MODES}, got {result_mode!r}"
        )
    procs = _expect(payload, "procs", int)
    if procs is not None and procs < 1:
        raise SpecError(f"procs must be a positive worker count, got {procs}")
    transport = _expect(payload, "transport", str, default="shm")
    if transport not in ("shm", "pipe"):
        raise SpecError(
            f"transport must be 'shm' or 'pipe', got {transport!r}"
        )
    seed = _expect(payload, "seed", int, default=0)
    faults = None
    if payload.get("faults") is not None:
        faults = parse_fault_spec(_expect(payload, "faults", str))
    chaos = None
    if payload.get("chaos") is not None:
        chaos = parse_chaos_spec(_expect(payload, "chaos", str))
        if chaos is not None and not chaos.any_chaos:
            chaos = None
    inputs = None
    if payload.get("inputs") is not None:
        raw = _expect(payload, "inputs", Mapping)
        inputs = {}
        for name, cells in raw.items():
            try:
                inputs[str(name)] = np.asarray(cells, dtype=float)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"input {name!r} is not a numeric array: {exc}",
                    tensor=str(name),
                ) from exc
    return ExecuteRequest(
        program=program,
        tenant=tenant,
        config=config,
        deadline_ms=deadline_ms,
        inputs=inputs,
        seed=seed,
        backend=backend,
        procs=procs,
        transport=transport,
        faults=faults,
        chaos=chaos,
        result_mode=result_mode,
    )
