"""Request coalescing: one synthesis per in-flight plan-cache key.

A serving deployment sees bursts of identical requests (the same
specification submitted by many clients at once).  The plan cache
deduplicates *completed* syntheses; this module deduplicates
*in-flight* ones: the first request for a key (the **leader**) runs the
synthesis in an executor thread, every concurrent duplicate (a
**follower**) awaits the leader's :class:`asyncio.Future` and shares
the finished result.  A burst of N identical cold requests therefore
performs exactly one synthesis -- the property the server test suite
asserts through the plan cache's miss counter.

Failure semantics: the leader's exception propagates to every follower
(they would have failed identically), and the key is always cleared on
completion so a later retry starts fresh.

The shared value is the leader's very object -- followers must treat it
as read-only.  The handlers only serialize results into responses, so
sharing is safe; anything that mutates a result (``run_parallel``'s
note-keeping) happens on the *execution* path, which is never
coalesced (two identical programs may carry different inputs).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Tuple

__all__ = ["Coalescer"]


class Coalescer:
    """An :class:`asyncio.Future` per in-flight content-addressed key."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        #: requests that ran a synthesis themselves
        self.leaders = 0
        #: requests that shared another request's in-flight synthesis
        self.coalesced = 0

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: str,
        thunk: Callable[[], object],
        executor=None,
    ) -> Tuple[object, bool]:
        """``(result, was_coalesced)`` for ``thunk`` deduplicated by
        ``key``.

        The leader runs ``thunk`` via ``loop.run_in_executor`` (so the
        event loop keeps serving while the pipeline's search stages
        grind); followers await the leader's future and return its
        result with ``was_coalesced=True``.
        """
        loop = asyncio.get_running_loop()
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing), True
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            result = await loop.run_in_executor(executor, thunk)
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_exception(exc)
                # mark retrieved: without followers nobody else awaits it
                future.exception()
            raise
        else:
            self._inflight.pop(key, None)
            if not future.cancelled():
                future.set_result(result)
            return result, False

    def stats(self) -> Dict[str, int]:
        return {
            "inflight": self.inflight,
            "leaders": self.leaders,
            "coalesced": self.coalesced,
        }
