"""Per-route circuit breakers for the serving layer.

When a dependency of one route is sick -- worker pools thrashing, a
pathological program class that reliably times out -- retrying every
incoming request against it burns executor threads and makes the
outage worse.  A :class:`CircuitBreaker` is the standard remedy, per
route:

* **closed** (healthy): requests flow; consecutive failures are
  counted, a success resets the count;
* **open**: after ``failure_threshold`` consecutive failures the
  breaker rejects requests outright (the HTTP layer answers a
  structured 503 with ``Retry-After``) for ``reset_timeout_s``;
* **half-open**: after the cool-down, exactly one probe request is
  admitted -- success closes the breaker, failure re-opens it for
  another full cool-down.

Only *server-side* failures (5xx: pipeline errors, deadline expiries)
trip the breaker; client mistakes (400s) and load shedding (429s) say
nothing about route health and are not recorded.  ``/healthz`` is
never gated -- an open breaker is a *reported* condition, not an
excuse to go dark.

The clock is injectable so tests drive the open -> half-open
transition without sleeping.  Thread-safe; the HTTP layer records
outcomes from the event loop, but nothing here requires that.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """One route's failure-driven admission gate (see module doc)."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0  # consecutive, while closed
        self._opened_at: float = 0.0
        self._state = "closed"
        self._probing = False  # a half-open probe is in flight
        #: lifetime counters, surfaced in ``/healthz``
        self.rejected = 0
        self.opened = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` -- evaluating
        the open -> half-open transition against the clock."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = "half-open"
        return self._state

    def allow(self) -> bool:
        """Whether the next request may proceed.  In half-open state
        this admits exactly one probe: further calls are rejected until
        the probe's outcome is recorded."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                return True
            self.rejected += 1
            return False

    def record_success(self) -> None:
        """A gated request finished healthily: close the breaker."""
        with self._lock:
            self._failures = 0
            self._probing = False
            self._state = "closed"

    def record_failure(self) -> None:
        """A gated request failed server-side: count it; trip at the
        threshold (a half-open probe's failure re-opens immediately)."""
        with self._lock:
            if self._probing:  # the probe failed: full cool-down again
                self._probing = False
                self._state = "open"
                self._opened_at = self._clock()
                self.opened += 1
                self._failures = 0
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                if self._state != "open":
                    self.opened += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._failures = 0

    def retry_after_s(self) -> float:
        """Seconds until the breaker half-opens (for ``Retry-After``)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            left = self.reset_timeout_s - (self._clock() - self._opened_at)
            return max(0.0, left)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for ``/healthz``."""
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_s": self.reset_timeout_s,
            "rejected": self.rejected,
            "opened": self.opened,
        }
