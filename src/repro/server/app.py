"""The asyncio HTTP server: sockets, routing, lifecycle.

A deliberately minimal HTTP/1.1 implementation over
``asyncio.start_server`` -- the service speaks only what it needs
(request line, headers, ``Content-Length`` bodies, ``Connection:
close`` responses), keeping the container's stdlib the only
dependency.  One connection carries one request.

Request lifecycle: the event loop parses and routes; handler
coroutines (:mod:`repro.server.handlers`) push all blocking pipeline
work into a thread executor; error mapping is uniform and structured
-- client mistakes (:class:`SpecError`, :class:`ShapeError`) are 400s
with a diagnostic body, pipeline failures are 500s with the same
shape, and over-budget tenants are **not errors at all** (they degrade
to 200s with a ``degraded`` field).

Lifecycle: :meth:`ReproServer.start` binds the socket and starts the
pool reaper; :meth:`ReproServer.stop` stops accepting, waits for
in-flight requests, then drains warm pools and the executor.
``serve_main`` is the ``repro serve`` entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.expr.parser import ParseError
from repro.pipeline import synthesize
from repro.robustness.errors import (
    DeadlineExceeded,
    ReproError,
    ShapeError,
    SpecError,
)
from repro.runtime.plan_cache import PlanCache
from repro.runtime.supervisor import DEFAULT_WATCHDOG_S
from repro.server.breaker import CircuitBreaker
from repro.server.coalesce import Coalescer
from repro.server.handlers import Handlers
from repro.server.pools import PoolRegistry
from repro.server.tenants import TenantRegistry

__all__ = ["ServerConfig", "ReproServer", "serve_main"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: request body cap -- execute payloads carry arrays, synthesis only text
_MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER = 64 * 1024


@dataclass
class ServerConfig:
    """Everything a :class:`ReproServer` needs, injectable for tests."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick a free port (tests); :attr:`ReproServer.port`
    #: reports the bound one
    port: int = 0
    plan_cache_dir: Optional[str] = None
    plan_cache_size: int = 128
    tenants: TenantRegistry = field(default_factory=TenantRegistry)
    pool_max_idle: int = 2
    pool_idle_timeout_s: float = 120.0
    pool_reap_interval_s: float = 5.0
    #: executor width: how many syntheses/executions may grind at once
    workers: int = 4
    drain_timeout_s: float = 30.0
    #: admission control: how many ``/v1/*`` requests may be in flight
    #: before load shedding (429 + ``Retry-After``); 0 disables the gate
    max_inflight: int = 32
    #: default per-request deadline applied when a request sends none
    #: (``None`` = unbounded, the pre-deadline behaviour)
    deadline_ms: Optional[int] = None
    #: recv watchdog for supervised executions: a worker silent this
    #: long is terminated and the statement retried on a fresh pool
    watchdog_timeout_s: float = DEFAULT_WATCHDOG_S
    #: per-route circuit breaker: consecutive server-side failures
    #: before the route opens, and the cool-down before a probe
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    #: breaker clock seam -- tests drive open -> half-open w/o sleeping
    breaker_clock: Callable[[], float] = time.monotonic
    #: synthesis seam -- tests substitute an instrumented callable with
    #: the same ``(program, config, cache=...)`` signature
    synthesize_fn: Callable = synthesize


class ReproServer:
    """The running service: shared state + asyncio plumbing."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.plan_cache = PlanCache(
            maxsize=config.plan_cache_size,
            directory=config.plan_cache_dir,
        )
        self.tenants = config.tenants
        self.pools = PoolRegistry(
            max_idle_per_key=config.pool_max_idle,
            idle_timeout_s=config.pool_idle_timeout_s,
        )
        self.coalescer = Coalescer()
        self.executor = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-server",
        )
        self.synthesize_fn = config.synthesize_fn
        self.handlers = Handlers(self)
        self.request_counts: Dict[str, int] = {}
        self.started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()
        self._routes = {
            ("POST", "/v1/synthesize"): self.handlers.synthesize,
            ("POST", "/v1/execute"): self.handlers.execute,
            ("GET", "/healthz"): self.handlers.healthz,
            ("GET", "/stats"): self.handlers.healthz,
            ("GET", "/"): self.handlers.index,
        }
        #: admission control covers only the expensive ``/v1/*`` work;
        #: ``/healthz`` must answer even when the service is drowning
        self._gated = {
            path for method, path in self._routes if method == "POST"
        }
        self.breakers: Dict[str, CircuitBreaker] = {
            path: CircuitBreaker(
                failure_threshold=config.breaker_threshold,
                reset_timeout_s=config.breaker_reset_s,
                clock=config.breaker_clock,
            )
            for path in self._gated
        }
        #: ``/v1/*`` requests currently executing (admission gate)
        self.gated_inflight = 0
        #: requests shed by the in-flight gate (lifetime)
        self.shed = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's pick)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        self.started = time.monotonic()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._reaper = asyncio.create_task(self._reap_loop())

    async def _reap_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.pool_reap_interval_s)
            self.pools.reap()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight requests,
        then drain warm pools and the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._inflight:
            await asyncio.wait(
                set(self._inflight), timeout=self.config.drain_timeout_s
            )
        self.pools.drain()
        self.executor.shutdown(wait=True)

    # -- the HTTP surface --------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)
        try:
            await self._handle_one(reader, writer)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, path, headers = await self._read_head(reader, writer)
            if method is None:
                return  # error already written
            body = await self._read_body(reader, writer, headers)
            if body is None:
                return
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            return  # client went away or spoke garbage; nothing to answer
        self._count(f"{method} {path}")
        handler = self._routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in self._routes}
            if path in known_paths:
                self._write(writer, 405, {
                    "error": "method_not_allowed",
                    "detail": f"{method} is not supported on {path}",
                })
            else:
                self._write(writer, 404, {
                    "error": "not_found",
                    "detail": f"no route for {path}",
                    "endpoints": sorted(
                        f"{m} {p}" for m, p in self._routes
                    ),
                })
            return
        payload = None
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._write(writer, 400, {
                    "error": "bad_json",
                    "detail": f"request body is not valid JSON: {exc}",
                })
                return
        elif method == "POST":
            self._write(writer, 400, {
                "error": "bad_json",
                "detail": "POST requires a JSON body",
            })
            return
        gated = path in self._gated
        breaker = self.breakers.get(path)
        if gated:
            if (
                self.config.max_inflight
                and self.gated_inflight >= self.config.max_inflight
            ):
                # load shedding: a structured 429 now beats an opaque
                # timeout later; Retry-After tells well-behaved clients
                # when to come back
                self.shed += 1
                self._write(writer, 429, {
                    "error": "overloaded",
                    "detail": (
                        f"{self.gated_inflight} requests in flight "
                        f">= max_inflight={self.config.max_inflight}; "
                        "retry shortly"
                    ),
                    "max_inflight": self.config.max_inflight,
                }, headers={"Retry-After": "1"})
                return
            if breaker is not None and not breaker.allow():
                retry_after = max(1, round(breaker.retry_after_s()))
                self._write(writer, 503, {
                    "error": "circuit_open",
                    "detail": (
                        f"circuit breaker for {path} is "
                        f"{breaker.state} after repeated failures; "
                        "retry after the cool-down"
                    ),
                    "breaker": breaker.snapshot(),
                }, headers={"Retry-After": str(retry_after)})
                return
            self.gated_inflight += 1
        try:
            try:
                status, response = await handler(payload)
            except (SpecError, ShapeError) as exc:
                status, response = 400, {
                    "error": type(exc).__name__,
                    "detail": exc.diagnostic(),
                }
            except ParseError as exc:
                status, response = 400, {
                    "error": "ParseError",
                    "detail": str(exc),
                }
            except DeadlineExceeded as exc:
                status, response = 504, {
                    "error": "DeadlineExceeded",
                    "detail": exc.diagnostic(),
                }
            except ReproError as exc:
                status, response = 500, {
                    "error": type(exc).__name__,
                    "detail": exc.diagnostic(),
                }
            except Exception as exc:  # noqa: BLE001 -- last-resort mapping
                print(
                    f"repro.server: unhandled {type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                status, response = 500, {
                    "error": "internal",
                    "detail": f"{type(exc).__name__}: {exc}",
                }
        finally:
            if gated:
                self.gated_inflight -= 1
        if gated and breaker is not None:
            # only server-side failures say anything about route
            # health; 400s are the client's problem
            if status >= 500:
                breaker.record_failure()
            else:
                breaker.record_success()
        self._write(writer, status, response)

    async def _read_head(self, reader, writer):
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEADER:
            self._write(writer, 400, {
                "error": "bad_request", "detail": "headers too large",
            })
            return None, None, None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            self._write(writer, 400, {
                "error": "bad_request",
                "detail": f"malformed request line {lines[0]!r}",
            })
            return None, None, None
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0] or "/"
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(self, reader, writer, headers) -> Optional[bytes]:
        raw = headers.get("content-length", "0")
        try:
            length = int(raw)
        except ValueError:
            self._write(writer, 400, {
                "error": "bad_request",
                "detail": f"bad Content-Length {raw!r}",
            })
            return None
        if length > _MAX_BODY:
            self._write(writer, 413, {
                "error": "payload_too_large",
                "detail": f"body of {length} bytes exceeds {_MAX_BODY}",
            })
            return None
        if length == 0:
            return b""
        return await reader.readexactly(length)

    def _count(self, route: str) -> None:
        self.request_counts[route] = self.request_counts.get(route, 0) + 1

    @staticmethod
    def _write(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)


async def _serve_forever(config: ServerConfig) -> None:
    app = ReproServer(config)
    await app.start()
    print(f"repro.server listening on http://{app.host}:{app.port}")
    try:
        await asyncio.Event().wait()
    finally:
        await app.stop()


def serve_main(argv=None) -> int:
    """Entry point of ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the synthesis pipeline over HTTP/JSON: coalesced "
            "compilation, per-tenant budgets, warm SPMD worker pools."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8075, help="bind port (0 = OS pick)"
    )
    parser.add_argument(
        "--plan-cache", metavar="DIR", default=None,
        help="on-disk plan cache directory (shared with the CLI)",
    )
    parser.add_argument(
        "--plan-cache-size", type=int, default=128,
        help="in-memory plan cache entries",
    )
    parser.add_argument(
        "--tenants-file", metavar="FILE", default=None,
        help="JSON tenant policies (see repro.server.tenants)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="concurrent syntheses/executions",
    )
    parser.add_argument(
        "--pool-max-idle", type=int, default=2,
        help="warm worker pools kept per (procs, transport)",
    )
    parser.add_argument(
        "--pool-idle-timeout", type=float, default=120.0, metavar="S",
        help="seconds before an idle warm pool is reaped",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=32,
        help=(
            "in-flight /v1/* requests before load shedding "
            "(429 + Retry-After); 0 disables the gate"
        ),
    )
    parser.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help=(
            "default per-request deadline applied when a request "
            "sends no deadline_ms (expiry = structured 504)"
        ),
    )
    parser.add_argument(
        "--watchdog-timeout", type=float, default=DEFAULT_WATCHDOG_S,
        metavar="S",
        help=(
            "recv watchdog: seconds a worker may stay silent before "
            "it is terminated and the statement retried"
        ),
    )
    args = parser.parse_args(argv)
    if args.port < 0 or args.port > 65535:
        print(f"error: port {args.port} out of range", file=sys.stderr)
        return 2
    if args.workers < 1 or args.plan_cache_size < 1:
        print(
            "error: --workers and --plan-cache-size must be positive",
            file=sys.stderr,
        )
        return 2
    if args.pool_max_idle < 0 or args.pool_idle_timeout <= 0:
        print(
            "error: --pool-max-idle must be >= 0 and "
            "--pool-idle-timeout positive",
            file=sys.stderr,
        )
        return 2
    if args.max_inflight < 0 or args.watchdog_timeout <= 0:
        print(
            "error: --max-inflight must be >= 0 and "
            "--watchdog-timeout positive",
            file=sys.stderr,
        )
        return 2
    if args.deadline_ms is not None and args.deadline_ms < 1:
        print(
            "error: --deadline-ms must be a positive millisecond count",
            file=sys.stderr,
        )
        return 2
    try:
        tenants = (
            TenantRegistry.from_file(args.tenants_file)
            if args.tenants_file
            else TenantRegistry()
        )
    except SpecError as exc:
        print(f"error: {exc.diagnostic()}", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        plan_cache_dir=args.plan_cache,
        plan_cache_size=args.plan_cache_size,
        tenants=tenants,
        workers=args.workers,
        pool_max_idle=args.pool_max_idle,
        pool_idle_timeout_s=args.pool_idle_timeout,
        max_inflight=args.max_inflight,
        deadline_ms=args.deadline_ms,
        watchdog_timeout_s=args.watchdog_timeout,
    )
    try:
        asyncio.run(_serve_forever(config))
    except KeyboardInterrupt:
        pass
    return 0
