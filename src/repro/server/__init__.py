"""repro.server: the async multi-tenant compilation service.

Serves the synthesis pipeline over HTTP/JSON with three serving-layer
optimizations the offline CLI cannot provide:

* **request coalescing** (:mod:`repro.server.coalesce`) -- concurrent
  identical requests share one in-flight synthesis;
* **tenant admission** (:mod:`repro.server.tenants`) -- per-tenant
  search budgets that degrade gracefully, never 5xx;
* **warm pools** (:mod:`repro.server.pools`) -- SPMD worker pools
  reused across execute requests.

Start it with ``repro serve`` (see :func:`repro.server.app.serve_main`)
or embed :class:`repro.server.app.ReproServer` in an asyncio program.
"""

from repro.server.app import ReproServer, ServerConfig, serve_main
from repro.server.coalesce import Coalescer
from repro.server.pools import PoolRegistry
from repro.server.tenants import TenantPolicy, TenantRegistry

__all__ = [
    "ReproServer",
    "ServerConfig",
    "serve_main",
    "Coalescer",
    "PoolRegistry",
    "TenantPolicy",
    "TenantRegistry",
]
