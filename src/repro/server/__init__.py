"""repro.server: the async multi-tenant compilation service.

Serves the synthesis pipeline over HTTP/JSON with three serving-layer
optimizations the offline CLI cannot provide:

* **request coalescing** (:mod:`repro.server.coalesce`) -- concurrent
  identical requests share one in-flight synthesis;
* **tenant admission** (:mod:`repro.server.tenants`) -- per-tenant
  search budgets that degrade gracefully, never 5xx;
* **warm pools** (:mod:`repro.server.pools`) -- SPMD worker pools
  reused across execute requests.

PR 7 adds the fault-tolerance layer that makes the service survivable
(``docs/architecture.md`` section 13): executions run under a
:class:`~repro.runtime.supervisor.PoolSupervisor` (dead workers
respawned, statements retried bit-identically), per-request
``deadline_ms`` deadlines surface as structured 504s, a bounded
in-flight gate sheds load with 429 + ``Retry-After``, and per-route
:class:`~repro.server.breaker.CircuitBreaker`\\ s stop hammering a
sick route -- all observable in ``/healthz``.

Start it with ``repro serve`` (see :func:`repro.server.app.serve_main`)
or embed :class:`repro.server.app.ReproServer` in an asyncio program.
"""

from repro.server.app import ReproServer, ServerConfig, serve_main
from repro.server.breaker import CircuitBreaker
from repro.server.coalesce import Coalescer
from repro.server.pools import PoolRegistry
from repro.server.tenants import TenantPolicy, TenantRegistry

__all__ = [
    "CircuitBreaker",
    "ReproServer",
    "ServerConfig",
    "serve_main",
    "Coalescer",
    "PoolRegistry",
    "TenantPolicy",
    "TenantRegistry",
]
