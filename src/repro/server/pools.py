"""Warm :class:`~repro.runtime.process.SpmdProcessPool` reuse.

Spawning worker processes per request would put process startup on
every execution's critical path -- the exact cost the paper's batch
pipeline amortizes by compiling once and executing many times.  The
registry keeps finished pools warm, keyed by ``(procs, transport)``
(pools are interchangeable within a key: workers hold no state between
statements), and leases them to one request at a time -- the worker
protocol is strictly request/reply, so a pool must never serve two
executions concurrently.

Health discipline (the ``run_parallel`` pool-teardown fix): a pool
whose worker died mid-request is marked broken by the router; the
registry closes and **evicts** it on release instead of parking it for
the next request, and re-checks liveness on every lease (catching
workers killed while parked).  Idle pools are reaped after
``idle_timeout_s`` -- the server's background reaper calls
:meth:`reap` periodically -- and :meth:`drain` closes everything for a
graceful shutdown.

Thread-safe: executions run in the server's executor threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.process import SpmdProcessPool

__all__ = ["PoolRegistry"]

PoolKey = Tuple[int, str]  # (procs, transport)


class PoolRegistry:
    """Keyed registry of warm, single-lease SPMD worker pools."""

    def __init__(
        self,
        max_idle_per_key: int = 2,
        idle_timeout_s: float = 120.0,
        clock: Callable[[], float] = time.monotonic,
        pool_factory: Callable[..., SpmdProcessPool] = SpmdProcessPool,
    ) -> None:
        if max_idle_per_key < 0:
            raise ValueError(
                f"max_idle_per_key must be >= 0, got {max_idle_per_key}"
            )
        self.max_idle_per_key = max_idle_per_key
        self.idle_timeout_s = idle_timeout_s
        self._clock = clock
        self._factory = pool_factory
        #: idle pools per key with the instant they were parked
        self._idle: Dict[PoolKey, List[Tuple[SpmdProcessPool, float]]] = {}
        self._busy: Dict[int, PoolKey] = {}  # id(pool) -> key
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0
        self.evicted_broken = 0
        self.reaped = 0
        self.discarded = 0
        self.respawned = 0

    def lease(
        self, procs: int, transport: str = "shm"
    ) -> Tuple[SpmdProcessPool, bool]:
        """``(pool, was_warm)``: a healthy pool for exclusive use.

        Reuses the most recently parked healthy pool under the key
        (LIFO keeps the hottest workers busiest and lets the rest age
        out); unhealthy parked pools are closed and counted evicted.
        """
        key: PoolKey = (procs, transport)
        while True:
            with self._lock:
                idle = self._idle.get(key, [])
                if not idle:
                    break
                pool, _ = idle.pop()
            if pool.healthy():
                with self._lock:
                    self._busy[id(pool)] = key
                self.reused += 1
                return pool, True
            self.evicted_broken += 1
            pool.close()
        pool = self._factory(procs, transport=transport)
        with self._lock:
            self._busy[id(pool)] = key
        self.created += 1
        return pool, False

    def replace(
        self,
        old: Optional[SpmdProcessPool],
        new: SpmdProcessPool,
    ) -> None:
        """Re-key a busy lease from ``old`` to its respawned ``new``.

        A :class:`~repro.runtime.supervisor.PoolSupervisor` that
        respawns a dead leased pool calls this (via ``on_respawn``) so
        the later :meth:`release` of the replacement finds its lease --
        without it the replacement looks foreign (closed defensively)
        and the dead pool's busy entry leaks forever.  Lifetime of
        ``old`` is the supervisor's problem; only bookkeeping moves.
        """
        with self._lock:
            key = (
                self._busy.pop(id(old), None) if old is not None else None
            )
            if key is None:
                return  # not a tracked lease: nothing to re-key
            self._busy[id(new)] = key
        self.respawned += 1

    def release(self, pool: SpmdProcessPool) -> None:
        """Return a leased pool: park it warm, or evict it if broken.

        Never park a pool whose worker died mid-request -- the next
        lease would hand a dead pool to an innocent request.
        """
        with self._lock:
            key = self._busy.pop(id(pool), None)
        if key is None:  # not ours; close defensively
            pool.close()
            return
        if pool.broken or not pool.healthy():
            self.evicted_broken += 1
            pool.close()
            return
        overflow: List[SpmdProcessPool] = []
        with self._lock:
            idle = self._idle.setdefault(key, [])
            idle.append((pool, self._clock()))
            while len(idle) > self.max_idle_per_key:
                victim, _ = idle.pop(0)
                overflow.append(victim)
        for victim in overflow:
            self.discarded += 1
            victim.close()

    def reap(self) -> int:
        """Close pools idle longer than ``idle_timeout_s``; returns how
        many were reaped."""
        now = self._clock()
        victims: List[SpmdProcessPool] = []
        with self._lock:
            for key, idle in list(self._idle.items()):
                keep = []
                for pool, since in idle:
                    if now - since > self.idle_timeout_s:
                        victims.append(pool)
                    else:
                        keep.append((pool, since))
                if keep:
                    self._idle[key] = keep
                else:
                    self._idle.pop(key, None)
        for pool in victims:
            self.reaped += 1
            pool.close()
        return len(victims)

    def drain(self) -> None:
        """Close every parked pool (graceful shutdown).  Busy pools are
        closed by their leaseholders via :meth:`release`; the server
        drains only after in-flight requests finish."""
        with self._lock:
            victims = [
                pool for idle in self._idle.values() for pool, _ in idle
            ]
            self._idle.clear()
        for pool in victims:
            pool.close()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            idle = sum(len(v) for v in self._idle.values())
            busy = len(self._busy)
            keys = sorted(
                f"{procs}x{transport}" for procs, transport in self._idle
            )
        return {
            "idle": idle,
            "busy": busy,
            "idle_keys": keys,
            "created": self.created,
            "reused": self.reused,
            "evicted_broken": self.evicted_broken,
            "reaped": self.reaped,
            "discarded": self.discarded,
            "respawned": self.respawned,
        }
